// Text exposition for the scrape endpoint (DESIGN.md §14): renders the
// metrics registry and the latest HealthSnapshot as Prometheus text
// exposition format (version 0.0.4) and the snapshot alone as a JSON
// object.  Output is deterministic for identical inputs (name-sorted
// families, round-trip number formatting), so the format is golden-file
// testable.
#pragma once

#include <string>
#include <string_view>

#include "obs/live/health.hpp"
#include "obs/metrics.hpp"

namespace prism::obs::live {

/// Sanitizes a registry metric name into a Prometheus metric name:
/// [a-zA-Z0-9_:] survive, every other byte becomes '_', and a leading
/// digit gains a '_' prefix.
std::string prometheus_name(std::string_view name);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline are escaped; everything else passes through.
std::string escape_label_value(std::string_view value);

/// Renders `snap` (and, when non-null, `health`) as Prometheus text
/// exposition:
///   * every registry counter becomes family `prism_<name>_total` with
///     HELP/TYPE lines (TYPE counter);
///   * every gauge becomes `prism_<name>` (TYPE gauge);
///   * every histogram becomes `prism_<name>` with cumulative
///     `_bucket{le="..."}` rows, the mandatory `le="+Inf"` row, `_sum`
///     and `_count` (TYPE histogram);
///   * health stages become `prism_pipeline_records{stage="..",state=".."}`
///     plus `prism_pipeline_conserved{stage=".."}`,
///   * degradation fields become `prism_degradation{kind=".."}`, and the
///     sample itself `prism_health_sample_seq` / `prism_health_sample_age_ns`
///     (age relative to `now_ns`, clamped at zero).
std::string prometheus_exposition(const MetricsSnapshot& snap,
                                  const HealthSnapshot* health = nullptr,
                                  std::uint64_t now_ns = 0);

/// Renders one HealthSnapshot as a JSON object (schema documented in
/// DESIGN.md §14; `version` is kHealthSnapshotVersion).
std::string health_json(const HealthSnapshot& health);

}  // namespace prism::obs::live
