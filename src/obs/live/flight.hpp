// Fault flight recorder (DESIGN.md §14): a fixed-capacity lock-free ring of
// recent structured events from the live tier's failure paths — fault
// injections, retries, backpressure parks, stream-corrupt latches, dead-LIS
// drains, wire losses, tool isolations.  Post-mortems of chaos runs read the
// tail instead of re-running with lineage tracing on: the ring is always
// armed (like the metrics registry), costs a handful of relaxed atomics per
// event, and sits exclusively on cold paths — no per-record site records
// into it.
//
// Concurrency: multi-producer, snapshot-reader.  A producer claims a ticket
// with one fetch_add, invalidates the slot's seq, stores the event payload
// as relaxed atomic words, then publishes seq = ticket + 1 (release).  The
// dump walks the last `capacity` tickets and keeps a slot only when its seq
// matched the expected ticket before *and* after the copy — a slot being
// rewritten mid-dump is skipped, never torn.  Two producers can collide on
// one slot only when the ring wraps a full lap during a single 64-byte
// write; the seq check degrades that to one dropped diagnostic event.
//
// With PRISM_OBS=OFF the recorder and the PRISM_OBS_FLIGHT macro compile
// away entirely, like every other obs plane.
#pragma once

#ifndef PRISM_OBS_ENABLED
#define PRISM_OBS_ENABLED 1
#endif

#if PRISM_OBS_ENABLED

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace prism::obs::live {

/// One structured event.  `category` buckets events for attribution math
/// ("wire_loss", "send_loss", "dead_loss", "lis_crash", "fault", "retry",
/// "backpressure", "stream_corrupt", "tool_isolated", "control_drop");
/// `detail` carries the site or kind name; `count` the records affected
/// (0 for point events); `node` the source node or tool index.
struct FlightEvent {
  std::uint64_t t_ns = 0;
  std::uint64_t count = 0;
  std::uint32_t node = 0;
  char category[20] = {};
  char detail[24] = {};
};

static_assert(std::is_trivially_copyable_v<FlightEvent>,
              "FlightEvent must stay ring-transportable");
static_assert(sizeof(FlightEvent) == 64, "one cache line per slot payload");

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// `capacity` must be a nonzero power of two.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder the live-tier hook sites write into.
  static FlightRecorder& instance();

  /// Records one event.  Lock-free, callable from any thread.
  void record(std::string_view category, std::string_view detail,
              std::uint32_t node = 0, std::uint64_t count = 0) noexcept;

  /// Events recorded since construction / the last reset().
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire) -
           base_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// The most recent events, oldest first, bounded by `max` and by what the
  /// ring still holds.  Slots being rewritten concurrently are skipped.
  std::vector<FlightEvent> tail(std::size_t max = SIZE_MAX) const;

  /// Sum of `count` over the tail's events whose category equals `c`.
  std::uint64_t count_in_category(std::string_view c) const;
  /// Number of tail events whose category equals `c`.
  std::uint64_t events_in_category(std::string_view c) const;

  /// JSON dump of the tail:
  ///   {"recorded":N,"capacity":C,"events":[{"t_ns":..,"category":"..",
  ///    "detail":"..","node":..,"count":..},...]}
  /// This is what the scrape endpoint serves on /flight and what a
  /// degradation post-mortem attaches.
  std::string dump_json(std::size_t max = SIZE_MAX) const;

  /// Logically clears the ring (test isolation): events before the current
  /// head stop being visible to tail()/recorded().
  void reset() noexcept {
    base_.store(head_.load(std::memory_order_acquire),
                std::memory_order_release);
  }

 private:
  static constexpr std::size_t kEventWords =
      sizeof(FlightEvent) / sizeof(std::uint64_t);

  struct Slot {
    /// ticket + 1 of the last completed write; 0 = never written or
    /// mid-write (invalidated before the payload stores).
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kEventWords] = {};
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> base_{0};
};

}  // namespace prism::obs::live

/// Records one flight event into the process recorder.  Cold paths only.
#define PRISM_OBS_FLIGHT(category, detail, node, count)               \
  ::prism::obs::live::FlightRecorder::instance().record(              \
      category, detail, static_cast<std::uint32_t>(node),             \
      static_cast<std::uint64_t>(count))

#else  // !PRISM_OBS_ENABLED — the recorder vanishes with the plane.

#define PRISM_OBS_FLIGHT(category, detail, node, count) ((void)0)

#endif  // PRISM_OBS_ENABLED
