#include "obs/live/expo.hpp"

#include <charconv>
#include <cstdio>

namespace prism::obs::live {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);  // shortest round-trip form
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void help_type(std::string& out, const std::string& family,
               std::string_view help, std::string_view type) {
  out += "# HELP ";
  out += family;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

void stage_row(std::string& out, const char* stage, const char* state,
               std::uint64_t v) {
  out += "prism_pipeline_records{stage=\"";
  out += escape_label_value(stage);
  out += "\",state=\"";
  out += state;
  out += "\"} ";
  out += std::to_string(v);
  out += '\n';
}

void degradation_row(std::string& out, const char* kind, std::uint64_t v) {
  out += "prism_degradation{kind=\"";
  out += kind;
  out += "\"} ";
  out += std::to_string(v);
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_exposition(const MetricsSnapshot& snap,
                                  const HealthSnapshot* health,
                                  std::uint64_t now_ns) {
  std::string out;
  out.reserve(4096);

  // Registry counters: family <prefix><name>_total, TYPE counter.  The
  // snapshot arrives name-sorted, so families render in a stable order.
  for (const auto& c : snap.counters) {
    const std::string family = "prism_" + prometheus_name(c.name) + "_total";
    help_type(out, family, "registry counter " + c.name, "counter");
    out += family;
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }

  for (const auto& g : snap.gauges) {
    const std::string family = "prism_" + prometheus_name(g.name);
    help_type(out, family, "registry gauge " + g.name, "gauge");
    out += family;
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }

  // Histograms: cumulative buckets (our registry stores per-bucket counts),
  // the mandatory +Inf row, then _sum and _count.
  for (const auto& h : snap.histograms) {
    const std::string family = "prism_" + prometheus_name(h.name);
    help_type(out, family, "registry histogram " + h.name, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size() && i < h.buckets.size(); ++i) {
      cum += h.buckets[i];
      out += family;
      out += "_bucket{le=\"";
      append_double(out, h.bounds[i]);
      out += "\"} ";
      out += std::to_string(cum);
      out += '\n';
    }
    if (h.buckets.size() > h.bounds.size()) cum += h.buckets.back();
    out += family;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(cum);
    out += '\n';
    out += family;
    out += "_sum ";
    append_double(out, h.sum);
    out += '\n';
    out += family;
    out += "_count ";
    out += std::to_string(h.count);
    out += '\n';
  }

  if (health != nullptr) {
    const HealthSnapshot& hs = *health;

    help_type(out, "prism_pipeline_records",
              "pipeline conservation ledger per stage", "gauge");
    for (std::uint32_t i = 0;
         i < hs.stage_count && i < HealthSnapshot::kMaxStages; ++i) {
      const StageHealth& s = hs.stages[i];
      stage_row(out, s.name, "admitted", s.admitted);
      stage_row(out, s.name, "completed", s.completed);
      stage_row(out, s.name, "lost", s.lost);
      stage_row(out, s.name, "in_flight", s.in_flight);
      stage_row(out, s.name, "refused", s.refused);
    }

    help_type(out, "prism_pipeline_conserved",
              "1 when admitted == completed + lost + in_flight", "gauge");
    for (std::uint32_t i = 0;
         i < hs.stage_count && i < HealthSnapshot::kMaxStages; ++i) {
      const StageHealth& s = hs.stages[i];
      out += "prism_pipeline_conserved{stage=\"";
      out += escape_label_value(s.name);
      out += "\"} ";
      out += s.conserved() ? '1' : '0';
      out += '\n';
    }

    help_type(out, "prism_degradation",
              "degradation ledger (DegradationReport mirror)", "gauge");
    degradation_row(out, "lises_dead", hs.lises_dead);
    degradation_row(out, "tools_failed", hs.tools_failed);
    degradation_row(out, "records_lost_send", hs.records_lost_send);
    degradation_row(out, "records_lost_dead", hs.records_lost_dead);
    degradation_row(out, "records_lost_wire", hs.records_lost_wire);
    degradation_row(out, "control_dropped", hs.control_dropped);
    degradation_row(out, "holdback_expired", hs.holdback_expired);

    help_type(out, "prism_degraded", "1 when any degradation field is nonzero",
              "gauge");
    out += "prism_degraded ";
    out += hs.degraded ? '1' : '0';
    out += '\n';

    help_type(out, "prism_alloc_bytes_total",
              "bytes allocated (prof interposition)", "counter");
    out += "prism_alloc_bytes_total ";
    out += std::to_string(hs.alloc_bytes);
    out += '\n';
    help_type(out, "prism_alloc_count_total",
              "allocations (prof interposition)", "counter");
    out += "prism_alloc_count_total ";
    out += std::to_string(hs.alloc_count);
    out += '\n';

    help_type(out, "prism_flight_events_total",
              "flight-recorder events recorded", "counter");
    out += "prism_flight_events_total ";
    out += std::to_string(hs.flight_events);
    out += '\n';

    help_type(out, "prism_health_sample_seq",
              "sample number of this snapshot", "counter");
    out += "prism_health_sample_seq ";
    out += std::to_string(hs.seq);
    out += '\n';

    help_type(out, "prism_health_sample_age_ns",
              "steady-clock age of this snapshot", "gauge");
    out += "prism_health_sample_age_ns ";
    out += std::to_string(now_ns > hs.t_wall_ns ? now_ns - hs.t_wall_ns : 0);
    out += '\n';
  }

  return out;
}

std::string health_json(const HealthSnapshot& hs) {
  std::string out;
  out.reserve(2048);
  out += "{\"version\":";
  out += std::to_string(hs.version);
  out += ",\"seq\":";
  out += std::to_string(hs.seq);
  out += ",\"t_wall_ns\":";
  out += std::to_string(hs.t_wall_ns);
  out += ",\"degraded\":";
  out += hs.degraded ? "true" : "false";
  out += ",\"degradation\":{\"lises_dead\":";
  out += std::to_string(hs.lises_dead);
  out += ",\"tools_failed\":";
  out += std::to_string(hs.tools_failed);
  out += ",\"records_lost_send\":";
  out += std::to_string(hs.records_lost_send);
  out += ",\"records_lost_dead\":";
  out += std::to_string(hs.records_lost_dead);
  out += ",\"records_lost_wire\":";
  out += std::to_string(hs.records_lost_wire);
  out += ",\"control_dropped\":";
  out += std::to_string(hs.control_dropped);
  out += ",\"holdback_expired\":";
  out += std::to_string(hs.holdback_expired);
  out += "},\"alloc\":{\"count\":";
  out += std::to_string(hs.alloc_count);
  out += ",\"bytes\":";
  out += std::to_string(hs.alloc_bytes);
  out += ",\"frees\":";
  out += std::to_string(hs.free_count);
  out += "},\"flight_events\":";
  out += std::to_string(hs.flight_events);
  out += ",\"stages\":[";
  for (std::uint32_t i = 0; i < hs.stage_count && i < HealthSnapshot::kMaxStages;
       ++i) {
    const StageHealth& s = hs.stages[i];
    if (i) out += ',';
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"admitted\":";
    out += std::to_string(s.admitted);
    out += ",\"completed\":";
    out += std::to_string(s.completed);
    out += ",\"lost\":";
    out += std::to_string(s.lost);
    out += ",\"in_flight\":";
    out += std::to_string(s.in_flight);
    out += ",\"refused\":";
    out += std::to_string(s.refused);
    out += ",\"conserved\":";
    out += s.conserved() ? "true" : "false";
    out += '}';
  }
  out += "],\"counters\":[";
  for (std::uint32_t i = 0;
       i < hs.counter_count && i < HealthSnapshot::kMaxCounters; ++i) {
    const CounterHealth& c = hs.counters[i];
    if (i) out += ',';
    out += "{\"name\":";
    append_json_string(out, c.name);
    out += ",\"value\":";
    out += std::to_string(c.value);
    out += ",\"delta\":";
    out += std::to_string(c.delta);
    out += '}';
  }
  out += "],\"counters_truncated\":";
  out += std::to_string(hs.counters_truncated);
  out += '}';
  return out;
}

}  // namespace prism::obs::live
