// Live health snapshots for the streaming telemetry plane (DESIGN.md §14).
//
// Everything the obs stack produced so far is post-hoc: reports render after
// replicate() returns, lineage closes its ledger at stop().  The paper's
// evaluate→feedback loop — and the ROADMAP's model-predictive steering item —
// needs telemetry *while the IS runs*, the way ISIS exposes live instrument
// state through control endpoints and ISAAC does steering-grade in-situ
// telemetry.  HealthSnapshot is that contract: a versioned, trivially
// copyable point-in-time view of the pipeline's conservation ledger,
// degradation state, profiling tallies, and metrics-registry deltas, built
// by a TelemetrySampler on its own thread and published through a seq-locked
// double buffer so readers (scrape endpoint, future steering controller)
// never block the sampler or the hot path.
//
// The snapshot is a fixed-size POD on purpose: a seqlock reader races the
// writer by design, and the only way that race stays defined behavior (and
// TSan-clean) is to move the payload word-by-word through relaxed atomics —
// impossible with heap-owning members.  Names are fixed-capacity char
// arrays; overflow truncates and is counted, never reallocated.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

namespace prism::obs::live {

/// Bumped whenever HealthSnapshot's layout or field meaning changes, so a
/// steering controller (or an external scraper of the JSON form) can reject
/// snapshots it does not understand.
inline constexpr std::uint32_t kHealthSnapshotVersion = 1;

/// Conservation ledger of one pipeline stage.  The identity
///   admitted == completed + lost + in_flight
/// holds in *every* snapshot, not only at quiescence: in_flight is the
/// residue by definition, and the collector reads the three independent
/// counters in completed → lost → admitted order, so a record counted as
/// completed or lost was always already counted as admitted (both states are
/// reachable only after admission, and they are mutually exclusive) — the
/// residue can never go negative.  `torn` latches if it ever would, which
/// indicates a collector ordering bug, not measurement noise.
struct StageHealth {
  char name[16] = {};
  std::uint64_t admitted = 0;   ///< records accepted into this stage
  std::uint64_t completed = 0;  ///< records that left it downstream
  std::uint64_t lost = 0;       ///< records destroyed inside it (attributed)
  std::uint64_t in_flight = 0;  ///< residue: admitted - completed - lost
  std::uint64_t refused = 0;    ///< offered but never admitted (overflow drops)
  std::uint32_t torn = 0;       ///< residue computed negative (ordering bug)
  std::uint32_t pad_ = 0;

  bool conserved() const {
    return admitted == completed + lost + in_flight && torn == 0;
  }
};

/// One metrics-registry counter carried in the snapshot: last sampled value
/// plus the delta against the previous sample (the rate numerator a
/// controller wants without keeping history).
struct CounterHealth {
  char name[56] = {};
  std::uint64_t value = 0;
  std::uint64_t delta = 0;
};

struct HealthSnapshot {
  static constexpr std::uint32_t kMaxStages = 8;
  static constexpr std::uint32_t kMaxCounters = 48;

  std::uint32_t version = kHealthSnapshotVersion;
  std::uint32_t stage_count = 0;
  std::uint64_t seq = 0;        ///< sample number, 1-based, monotonic
  std::uint64_t t_wall_ns = 0;  ///< steady-clock time the sample was taken

  // Degradation state (mirrors core::DegradationReport field-for-field; the
  // collector fills these from the same counters, in loss-before-admission
  // read order).
  std::uint32_t lises_dead = 0;
  std::uint32_t degraded = 0;  ///< any degradation field nonzero
  std::uint64_t tools_failed = 0;
  std::uint64_t records_lost_send = 0;
  std::uint64_t records_lost_dead = 0;
  std::uint64_t records_lost_wire = 0;
  std::uint64_t control_dropped = 0;
  std::uint64_t holdback_expired = 0;

  // Self-profiling tallies (obs/prof): process-wide allocator interposition
  // counts and the flight recorder's event ticker.
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t free_count = 0;
  std::uint64_t flight_events = 0;  ///< FlightRecorder events recorded so far

  StageHealth stages[kMaxStages] = {};

  std::uint32_t counter_count = 0;
  std::uint32_t counters_truncated = 0;  ///< registry counters beyond the cap
  CounterHealth counters[kMaxCounters] = {};

  /// Stage row by name, or nullptr.
  const StageHealth* stage(std::string_view n) const {
    for (std::uint32_t i = 0; i < stage_count && i < kMaxStages; ++i)
      if (n == stages[i].name) return &stages[i];
    return nullptr;
  }

  /// Counter row by (possibly truncated) name, or nullptr.
  const CounterHealth* counter(std::string_view n) const {
    for (std::uint32_t i = 0; i < counter_count && i < kMaxCounters; ++i)
      if (n == counters[i].name) return &counters[i];
    return nullptr;
  }

  /// True when every stage row satisfies the conservation identity.
  bool conserved() const {
    for (std::uint32_t i = 0; i < stage_count && i < kMaxStages; ++i)
      if (!stages[i].conserved()) return false;
    return true;
  }

  /// Appends a stage row (truncating the name to the fixed capacity);
  /// in_flight is derived from the identity and `torn` latches if the
  /// residue would be negative.  Returns the row, or nullptr when the stage
  /// table is full.
  StageHealth* add_stage(std::string_view n, std::uint64_t admitted,
                         std::uint64_t completed, std::uint64_t lost,
                         std::uint64_t refused = 0) {
    if (stage_count >= kMaxStages) return nullptr;
    StageHealth& s = stages[stage_count++];
    copy_name(s.name, sizeof s.name, n);
    s.admitted = admitted;
    s.completed = completed;
    s.lost = lost;
    s.refused = refused;
    if (admitted >= completed + lost) {
      s.in_flight = admitted - completed - lost;
    } else {
      s.in_flight = 0;
      s.torn = 1;
    }
    return &s;
  }

  static void copy_name(char* dst, std::size_t cap, std::string_view src) {
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  }
};

static_assert(std::is_trivially_copyable_v<HealthSnapshot>,
              "HealthSnapshot must stay seqlock-transportable");

/// Seq-locked double buffer publishing HealthSnapshots from one writer (the
/// sampler) to any number of readers (scrape endpoint, steering controller,
/// tests) such that neither side ever blocks the other:
///
///   * the writer never takes a lock and never waits for readers — publish()
///     is a bounded sequence of relaxed word stores bracketed by seq counter
///     updates (odd = mid-write) on the slot readers are *not* pointed at;
///   * a reader copies the latest slot word-by-word and retries iff the
///     writer lapped it mid-copy (two publishes during one read) — with two
///     slots the retry is vanishingly rare and bounded in practice.
///
/// The payload crosses threads as relaxed atomic words (release fence before
/// the publishing seq store, acquire fence before the validating seq load),
/// which is the standard TSan-clean seqlock construction — no plain-memory
/// race exists anywhere in the protocol.
class HealthBoard {
 public:
  HealthBoard() = default;
  HealthBoard(const HealthBoard&) = delete;
  HealthBoard& operator=(const HealthBoard&) = delete;

  /// Publishes `s` (single writer only).
  void publish(const HealthSnapshot& s) noexcept {
    const std::uint64_t n = published_.load(std::memory_order_relaxed);
    Slot& slot = slots_[n & 1];
    // Odd seq marks the slot mid-write for any reader still pointed at it
    // from a previous lap.
    const std::uint64_t s0 = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::uint64_t words[kWords];
    std::memcpy(words, &s, sizeof s);
    for (std::size_t i = 0; i < kWords; ++i)
      slot.words[i].store(words[i], std::memory_order_relaxed);
    slot.seq.store(s0 + 2, std::memory_order_release);
    published_.store(n + 1, std::memory_order_release);
  }

  /// Copies the latest published snapshot into `out`.  Returns false when
  /// nothing has been published yet.  Wait-free for the writer; the reader
  /// retries only if it was lapped mid-copy.
  bool read(HealthSnapshot& out) const noexcept {
    for (;;) {
      const std::uint64_t n = published_.load(std::memory_order_acquire);
      if (n == 0) return false;
      const Slot& slot = slots_[(n - 1) & 1];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // writer lapped onto this slot; re-resolve
      std::uint64_t words[kWords];
      for (std::size_t i = 0; i < kWords; ++i)
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      std::memcpy(&out, words, sizeof out);
      return true;
    }
  }

  /// Publishes completed so far (0 = nothing readable yet).
  std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kWords =
      (sizeof(HealthSnapshot) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kWords] = {};
  };

  Slot slots_[2];
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace prism::obs::live
