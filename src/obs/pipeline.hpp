// The runtime-nullable model-time observability sink (DESIGN.md §9).
//
// One PipelineObserver bundles the two model-time recorders — sampled record
// lineage and time-series probes — and is handed by pointer to IS components
// (Lis/Ism/TracingThrottle via set_observer) and simulation models
// (run_vista_ism / run_paradyn_rocc).  A null pointer is the default
// everywhere: unhooked runs execute no observability code at all and stay
// bit-identical to builds that never heard of this header.
#pragma once

#include <cstdint>

#include "obs/lineage.hpp"
#include "obs/timeline.hpp"

namespace prism::obs {

struct PipelineObserver {
  explicit PipelineObserver(std::uint32_t lineage_stride = 1)
      : lineage(lineage_stride) {}

  LineageTracer lineage;
  Timeline timeline;

  /// Fixed-interval sampling period for model-driven timeline pollers, in
  /// the model's time unit (simulated ms).  0 disables periodic polling;
  /// on-change probes still record.  Models read this once at start.
  double timeline_interval = 0;
};

}  // namespace prism::obs
