#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace prism::obs {

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: no bucket bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram: bounds must strictly increase");
}

std::vector<double> Histogram::latency_bounds_ns() {
  // 1us .. 10s in 1/2/5 decade steps.
  std::vector<double> b;
  for (double decade = 1e3; decade <= 1e9; decade *= 10) {
    b.push_back(decade);
    b.push_back(2 * decade);
    b.push_back(5 * decade);
  }
  b.push_back(1e10);
  return b;
}

std::vector<double> Histogram::percent_bounds() {
  std::vector<double> b;
  for (double p = 10; p <= 100; p += 10) b.push_back(p);
  return b;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  if (!(start > 0) || !(factor > 1) || n == 0)
    throw std::invalid_argument("Histogram: bad exponential bounds");
  std::vector<double> b;
  b.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i, v *= factor) b.push_back(v);
  return b;
}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  // Torn-read discipline (paired with count()/snapshot()): the bucket is
  // bumped first and count_ published with release, so a scraper that reads
  // count_ (acquire) *before* the buckets can never observe a sample in the
  // total that is missing from every bucket — concurrent snapshots satisfy
  // count <= sum(buckets), with equality at quiescence.
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_release);
  // Double-precision sum via CAS on the bit pattern; contention is rare
  // (histograms sit off the per-event fast path or tolerate a few retries).
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(expected) + v;
    if (sum_bits_.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(
                                                      next),
                                        std::memory_order_relaxed))
      break;
  }
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_)
    out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- snapshot

namespace {

template <typename Vec>
const typename Vec::value_type* find_sample(const Vec& v,
                                            std::string_view name) {
  for (const auto& s : v)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::counter(std::string_view name) const {
  return find_sample(counters, name);
}

const GaugeSample* MetricsSnapshot::gauge(std::string_view name) const {
  return find_sample(gauges, name);
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  return find_sample(histograms, name);
}

// ---------------------------------------------------------------- Registry

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, Histogram::latency_bounds_ns());
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.push_back(CounterSample{name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.push_back(GaugeSample{name, g->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    // Read order is load-bearing: count (acquire) strictly before the bucket
    // cells, pairing with record()'s bucket-then-count(release) write order.
    // The acquire/release edge guarantees s.count <= sum(s.buckets) even
    // mid-record; sum is a racy CAS cell and stays an approximation.
    s.count = h->count();
    s.sum = h->sum();
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    out.histograms.push_back(std::move(s));
  }
  return out;  // maps iterate sorted, so samples are name-sorted already
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace prism::obs
