// Span tracer with Chrome trace-event export (DESIGN.md §8).
//
// Following DeWiz's event-stream-as-first-class-object idea, the tracer
// records what the engine and IS pipeline *did* as a stream of spans and
// instants, ring-buffered per thread (newest events win when a ring wraps),
// and exports:
//
//   * Chrome/Perfetto trace-event JSON ("X" complete spans, "B"/"E"
//     begin/end pairs, "i" instants) — load the file at chrome://tracing or
//     https://ui.perfetto.dev;
//   * a folded-stack text dump (one "name;nested;deeper <ns>" line per
//     stack, flamegraph.pl-compatible).
//
// The tracer is disabled by default: SpanScope and begin()/end() check one
// relaxed atomic and return.  Event names and categories must be string
// literals (or otherwise outlive the tracer) — rings store the pointers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prism::obs {

namespace detail {
/// Appends `s` JSON-string-escaped.  Shared by the span tracer's and the
/// model-time Timeline's Chrome trace-event exporters so both emit files
/// Perfetto accepts identically.
void append_json_escaped(std::string& out, std::string_view s);
}  // namespace detail

/// Nanoseconds since the first call in this process (steady, monotonic).
/// Distinct epoch from core::now_ns(); trace timestamps are only ever
/// compared with each other.
inline std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t t0_ns = 0;  ///< begin (B/X/i) timestamp
  std::uint64_t t1_ns = 0;  ///< end timestamp (X only)
  std::uint32_t tid = 0;    ///< tracer-assigned thread index
  char phase = 'X';         ///< 'X' complete, 'B' begin, 'E' end, 'i' instant
};

class Tracer {
 public:
  static Tracer& instance();

  /// Runtime switch.  Disabled (default): record calls are one relaxed
  /// load + branch.  Enabling mid-run only affects events from then on.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity (events per thread) used for threads that have not yet
  /// recorded.  Existing rings keep their size.
  void set_ring_capacity(std::size_t events);

  void begin(const char* name, const char* cat);
  void end(const char* name, const char* cat);
  void instant(const char* name, const char* cat);
  /// Records a complete span with explicit begin/end times (ns).
  void complete(const char* name, const char* cat, std::uint64_t t0_ns,
                std::uint64_t t1_ns);

  /// All buffered events, merged across threads, sorted by (t0, tid).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON (ts/dur in microseconds, pid 0, tid = tracer
  /// thread index).
  std::string chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  /// Folded flamegraph stacks built from complete ('X') spans: one
  /// "root;child;leaf <self_ns>" line per distinct stack, per-thread
  /// nesting inferred from span containment, lines sorted.
  std::string folded_text() const;

  /// Discards all buffered events (rings stay registered).
  void clear();

  /// Events overwritten by ring wrap-around since the last clear().
  std::uint64_t dropped() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  // Singleton-only: ring() keys its per-thread ring off a thread_local that
  // assumes a single Tracer exists.
  Tracer() = default;

  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t tid)
        : buf(capacity), tid(tid) {}
    mutable std::mutex mu;  // owner thread writes; snapshot reads
    std::vector<TraceEvent> buf;
    std::size_t next = 0;    // write cursor
    std::size_t filled = 0;  // min(buf.size(), events written)
    std::uint64_t dropped = 0;
    std::uint32_t tid;
  };

  Ring& ring();
  void push(const TraceEvent& e);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> ring_capacity_{1 << 14};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII span: records one complete ('X') event on scope exit, spanning the
/// scope's lifetime.  Costs one atomic load when the tracer is disabled.
class SpanScope {
 public:
  SpanScope(const char* name, const char* cat) {
    if (Tracer::instance().enabled()) {
      name_ = name;
      cat_ = cat;
      t0_ = now_ns();
    }
  }
  ~SpanScope() {
    if (name_) Tracer::instance().complete(name_, cat_, t0_, now_ns());
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t t0_ = 0;
};

}  // namespace prism::obs
