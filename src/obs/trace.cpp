#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

namespace prism::obs {

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::set_ring_capacity(std::size_t events) {
  if (events == 0) throw std::invalid_argument("Tracer: zero ring capacity");
  ring_capacity_.store(events, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::ring() {
  // One ring per (thread, tracer) pair; the shared_ptr keeps the ring alive
  // for snapshots after the thread exits.
  thread_local std::shared_ptr<Ring> r = [this] {
    std::lock_guard lk(registry_mu_);
    auto made = std::make_shared<Ring>(
        ring_capacity_.load(std::memory_order_relaxed),
        static_cast<std::uint32_t>(rings_.size()));
    rings_.push_back(made);
    return made;
  }();
  return *r;
}

void Tracer::push(const TraceEvent& e) {
  Ring& r = ring();
  std::lock_guard lk(r.mu);
  if (r.filled == r.buf.size()) ++r.dropped;  // overwriting the oldest
  r.buf[r.next] = e;
  r.next = (r.next + 1) % r.buf.size();
  if (r.filled < r.buf.size()) ++r.filled;
}

void Tracer::begin(const char* name, const char* cat) {
  if (!enabled()) return;
  push(TraceEvent{name, cat, now_ns(), 0, 0, 'B'});
}

void Tracer::end(const char* name, const char* cat) {
  if (!enabled()) return;
  push(TraceEvent{name, cat, now_ns(), 0, 0, 'E'});
}

void Tracer::instant(const char* name, const char* cat) {
  if (!enabled()) return;
  push(TraceEvent{name, cat, now_ns(), 0, 0, 'i'});
}

void Tracer::complete(const char* name, const char* cat, std::uint64_t t0_ns,
                      std::uint64_t t1_ns) {
  if (!enabled()) return;
  push(TraceEvent{name, cat, t0_ns, t1_ns, 0, 'X'});
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lk(registry_mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& r : rings) {
    std::lock_guard lk(r->mu);
    // Oldest-first: the ring's logical start is `next` once it has wrapped.
    const std::size_t start = r->filled == r->buf.size() ? r->next : 0;
    for (std::size_t i = 0; i < r->filled; ++i) {
      TraceEvent e = r->buf[(start + i) % r->buf.size()];
      e.tid = r->tid;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lk(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) {
    std::lock_guard rlk(r->mu);
    total += r->dropped;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard lk(registry_mu_);
  for (const auto& r : rings_) {
    std::lock_guard rlk(r->mu);
    r->next = 0;
    r->filled = 0;
    r->dropped = 0;
  }
}

namespace detail {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace detail

namespace {

void append_escaped(std::string& out, const char* s) {
  detail::append_json_escaped(out, s);
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::chrome_json() const {
  const auto events = snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat ? e.cat : "prism");
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    append_us(out, e.t0_ns);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      append_us(out, e.t1_ns >= e.t0_ns ? e.t1_ns - e.t0_ns : 0);
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(e.tid);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("Tracer: cannot open " + path);
  const std::string json = chrome_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!f) throw std::runtime_error("Tracer: write failed for " + path);
}

std::string Tracer::folded_text() const {
  // Nesting is inferred per thread from complete-span containment: a span
  // beginning before the enclosing span's end is its child.  Self time is
  // the span's duration minus its direct children's durations.
  struct Frame {
    std::uint64_t t1;
    std::uint64_t dur;
    std::uint64_t child = 0;
    std::string path;
  };
  std::map<std::string, std::uint64_t> folded;

  auto events = snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                     return a.t1_ns > b.t1_ns;  // parents before children
                   });

  std::vector<Frame> stack;
  auto pop_frame = [&] {
    Frame& f = stack.back();
    folded[f.path] += f.dur >= f.child ? f.dur - f.child : 0;
    stack.pop_back();
  };

  std::uint32_t tid = 0;
  bool tid_open = false;
  for (const auto& e : events) {
    if (e.phase != 'X') continue;
    if (!tid_open || e.tid != tid) {
      while (!stack.empty()) pop_frame();
      tid = e.tid;
      tid_open = true;
    }
    while (!stack.empty() && e.t0_ns >= stack.back().t1) pop_frame();
    const std::uint64_t dur = e.t1_ns >= e.t0_ns ? e.t1_ns - e.t0_ns : 0;
    if (!stack.empty()) stack.back().child += dur;
    Frame f;
    f.t1 = e.t1_ns;
    f.dur = dur;
    f.path = stack.empty() ? e.name : stack.back().path + ";" + e.name;
    stack.push_back(std::move(f));
  }
  while (!stack.empty()) pop_frame();

  std::string out;
  for (const auto& [path, ns] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

}  // namespace prism::obs
