#include "obs/lineage.hpp"

#include <cmath>
#include <sstream>

namespace prism::obs {

std::string_view to_string(PipelineStage s) {
  switch (s) {
    case PipelineStage::kCapture: return "capture";
    case PipelineStage::kLisEnqueue: return "lis_enqueue";
    case PipelineStage::kLisForward: return "lis_forward";
    case PipelineStage::kIsmInput: return "ism_input";
    case PipelineStage::kIsmProcessed: return "ism_processed";
    case PipelineStage::kToolDispatch: return "tool_dispatch";
  }
  return "unknown";
}

std::string_view to_string(LossSite s) {
  switch (s) {
    case LossSite::kThrottle: return "throttle";
    case LossSite::kLisBuffer: return "lis_buffer";
    case LossSite::kLisPipe: return "lis_pipe";
    case LossSite::kTpBackpressure: return "tp_backpressure";
    case LossSite::kIsmQueue: return "ism_queue";
    case LossSite::kTpSendFailed: return "tp_send_failed";
    case LossSite::kFrameCorrupt: return "frame_corrupt";
    case LossSite::kLisDead: return "lis_dead";
    case LossSite::kRetryExhausted: return "retry_exhausted";
    case LossSite::kAggUplink: return "agg_uplink";
    case LossSite::kAggDead: return "agg_dead";
    case LossSite::kAggQueue: return "agg_queue";
  }
  return "unknown";
}

// ---------------------------------------------------------------- LineageReport

double LineageReport::attributed_loss_fraction() const {
  if (lost == 0) return 1.0;
  std::uint64_t named = 0;
  for (auto n : lost_at) named += n;
  return static_cast<double>(named) / static_cast<double>(lost);
}

void LineageReport::merge(const LineageReport& other) {
  offered += other.offered;
  admitted += other.admitted;
  completed += other.completed;
  lost += other.lost;
  in_flight += other.in_flight;
  for (std::size_t i = 0; i < stage.size(); ++i) stage[i].merge(other.stage[i]);
  end_to_end.merge(other.end_to_end);
  for (std::size_t i = 0; i < kLossSiteCount; ++i) {
    lost_at[i] += other.lost_at[i];
    loss_age[i].merge(other.loss_age[i]);
  }
}

namespace {

std::string transition_name(std::size_t i) {
  std::string out(to_string(static_cast<PipelineStage>(i)));
  out += "->";
  out += to_string(static_cast<PipelineStage>(i + 1));
  return out;
}

void summary_cells(std::ostringstream& os, const stats::Summary& s) {
  os << s.count() << ',' << s.mean() << ','
     << (s.count() ? s.min() : 0.0) << ',' << (s.count() ? s.max() : 0.0);
}

}  // namespace

std::string LineageReport::to_string() const {
  std::ostringstream os;
  os << "lineage: offered=" << offered << " admitted=" << admitted
     << " completed=" << completed << " lost=" << lost
     << " in_flight=" << in_flight << '\n';
  for (std::size_t i = 0; i + 1 < kPipelineStageCount; ++i) {
    if (stage[i].count() == 0) continue;
    os << "  " << transition_name(i) << ": mean=" << stage[i].mean()
       << " min=" << stage[i].min() << " max=" << stage[i].max() << '\n';
  }
  if (end_to_end.count() > 0)
    os << "  end_to_end: mean=" << end_to_end.mean()
       << " min=" << end_to_end.min() << " max=" << end_to_end.max() << '\n';
  for (std::size_t i = 0; i < kLossSiteCount; ++i) {
    if (lost_at[i] == 0) continue;
    os << "  lost@" << ::prism::obs::to_string(static_cast<LossSite>(i))
       << ": " << lost_at[i] << " (mean age " << loss_age[i].mean() << ")\n";
  }
  return os.str();
}

std::string LineageReport::csv() const {
  std::ostringstream os;
  os << "transition,count,mean,min,max\n";
  for (std::size_t i = 0; i + 1 < kPipelineStageCount; ++i) {
    os << transition_name(i) << ',';
    summary_cells(os, stage[i]);
    os << '\n';
  }
  os << "end_to_end,";
  summary_cells(os, end_to_end);
  os << '\n';
  for (std::size_t i = 0; i < kLossSiteCount; ++i) {
    os << "lost@" << ::prism::obs::to_string(static_cast<LossSite>(i)) << ','
       << lost_at[i] << ',' << loss_age[i].mean() << ','
       << (loss_age[i].count() ? loss_age[i].min() : 0.0) << ','
       << (loss_age[i].count() ? loss_age[i].max() : 0.0) << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------- LineageTracer

LineageTracer::LineageTracer(std::uint32_t stride)
    : stride_(stride == 0 ? 1 : stride) {}

bool LineageTracer::offer(LineageKey k, double t) {
  std::lock_guard lk(mu_);
  const bool admit = offered_++ % stride_ == 0;
  if (!admit) return false;
  ++done_.admitted;
  Entry e;
  e.t.fill(0.0);
  e.t[static_cast<std::size_t>(PipelineStage::kCapture)] = t;
  e.stamped = 1u << static_cast<std::size_t>(PipelineStage::kCapture);
  live_[k] = e;
  return true;
}

void LineageTracer::stamp(LineageKey k, PipelineStage s, double t) {
  std::lock_guard lk(mu_);
  auto it = live_.find(k);
  if (it == live_.end()) return;
  it->second.t[static_cast<std::size_t>(s)] = t;
  it->second.stamped |= 1u << static_cast<std::size_t>(s);
}

void LineageTracer::fold_completed(const Entry& e) {
  // Unstamped intermediate stages inherit the previous stamp (zero-width),
  // so the per-stage deltas telescope exactly to the end-to-end latency.
  std::array<double, kPipelineStageCount> t = e.t;
  for (std::size_t i = 1; i < kPipelineStageCount; ++i) {
    if (!(e.stamped & (1u << i)) || t[i] < t[i - 1]) t[i] = t[i - 1];
  }
  for (std::size_t i = 0; i + 1 < kPipelineStageCount; ++i)
    done_.stage[i].add(t[i + 1] - t[i]);
  done_.end_to_end.add(t[kPipelineStageCount - 1] - t[0]);
  ++done_.completed;
}

void LineageTracer::complete(LineageKey k, double t) {
  std::lock_guard lk(mu_);
  auto it = live_.find(k);
  if (it == live_.end()) return;
  it->second.t[static_cast<std::size_t>(PipelineStage::kToolDispatch)] = t;
  it->second.stamped |=
      1u << static_cast<std::size_t>(PipelineStage::kToolDispatch);
  fold_completed(it->second);
  live_.erase(it);
}

void LineageTracer::lose(LineageKey k, LossSite site, double t) {
  std::lock_guard lk(mu_);
  auto it = live_.find(k);
  if (it == live_.end()) return;
  const double t0 =
      it->second.t[static_cast<std::size_t>(PipelineStage::kCapture)];
  ++done_.lost;
  ++done_.lost_at[static_cast<std::size_t>(site)];
  done_.loss_age[static_cast<std::size_t>(site)].add(t >= t0 ? t - t0 : 0.0);
  live_.erase(it);
}

void LineageTracer::remap(LineageKey from, LineageKey to) {
  if (from == to) return;
  std::lock_guard lk(mu_);
  auto it = live_.find(from);
  if (it == live_.end()) return;
  Entry e = it->second;
  live_.erase(it);
  live_[to] = e;
}

bool LineageTracer::tracked(LineageKey k) const {
  std::lock_guard lk(mu_);
  return live_.count(k) != 0;
}

std::uint64_t LineageTracer::offered() const {
  std::lock_guard lk(mu_);
  return offered_;
}

std::uint64_t LineageTracer::admitted() const {
  std::lock_guard lk(mu_);
  return done_.admitted;
}

LineageReport LineageTracer::report() const {
  std::lock_guard lk(mu_);
  LineageReport out = done_;
  out.offered = offered_;
  out.in_flight = live_.size();
  return out;
}

}  // namespace prism::obs
