#include "obs/report.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>

#include "obs/live/flight.hpp"
#include "obs/prof/alloc.hpp"

namespace prism::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);  // shortest round-trip form
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string text_report(const MetricsSnapshot& snap) {
  std::string out;
  char line[256];
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& c : snap.counters) {
      std::snprintf(line, sizeof line, "  %-44s %20llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& g : snap.gauges) {
      std::snprintf(line, sizeof line, "  %-44s %20lld\n", g.name.c_str(),
                    static_cast<long long>(g.value));
      out += line;
    }
  }
  if (!snap.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& h : snap.histograms) {
      std::snprintf(line, sizeof line,
                    "  %-44s count=%llu mean=%.3g\n", h.name.c_str(),
                    static_cast<unsigned long long>(h.count), h.mean());
      out += line;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        if (i < h.bounds.size())
          std::snprintf(line, sizeof line, "    le %-12.4g %14llu\n",
                        h.bounds[i],
                        static_cast<unsigned long long>(h.buckets[i]));
        else
          std::snprintf(line, sizeof line, "    overflow %8s %14llu\n", "",
                        static_cast<unsigned long long>(h.buckets[i]));
        out += line;
      }
    }
  }
  return out;
}

std::string json_report(const MetricsSnapshot& snap) {
  std::string out;
  out += "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    append_quoted(out, snap.counters[i].name);
    out += ':';
    out += std::to_string(snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    append_quoted(out, snap.gauges[i].name);
    out += ':';
    out += std::to_string(snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i) out += ',';
    append_quoted(out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"bounds\":[";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j) out += ',';
      append_double(out, h.bounds[j]);
    }
    out += "],\"buckets\":[";
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      if (j) out += ',';
      out += std::to_string(h.buckets[j]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string text_report(const MetricsSnapshot& snap,
                        const ReportOptions& opts) {
  std::string out = text_report(snap);
  char line[256];
  if (opts.include_prof) {
    const auto a = prof::process_alloc_stats();
    out += "prof:\n";
    std::snprintf(line, sizeof line,
                  "  allocs=%llu frees=%llu bytes=%llu\n",
                  static_cast<unsigned long long>(a.allocs),
                  static_cast<unsigned long long>(a.frees),
                  static_cast<unsigned long long>(a.bytes));
    out += line;
  }
#if PRISM_OBS_ENABLED
  if (opts.flight_tail > 0) {
    const auto& rec = live::FlightRecorder::instance();
    const auto events = rec.tail(opts.flight_tail);
    std::snprintf(line, sizeof line, "flight: recorded=%llu showing=%zu\n",
                  static_cast<unsigned long long>(rec.recorded()),
                  events.size());
    out += line;
    for (const auto& ev : events) {
      std::snprintf(line, sizeof line,
                    "  t=%llu %-16s %-20s node=%u count=%llu\n",
                    static_cast<unsigned long long>(ev.t_ns), ev.category,
                    ev.detail, ev.node,
                    static_cast<unsigned long long>(ev.count));
      out += line;
    }
  }
#endif
  return out;
}

std::string json_report(const MetricsSnapshot& snap,
                        const ReportOptions& opts) {
  std::string out = json_report(snap);
  // Splice the extra planes in before the closing brace: the base object's
  // byte-stable rendering is preserved verbatim.
  out.pop_back();
  if (opts.include_prof) {
    const auto a = prof::process_alloc_stats();
    out += ",\"prof\":{\"allocs\":";
    out += std::to_string(a.allocs);
    out += ",\"frees\":";
    out += std::to_string(a.frees);
    out += ",\"bytes\":";
    out += std::to_string(a.bytes);
    out += '}';
  }
#if PRISM_OBS_ENABLED
  if (opts.flight_tail > 0) {
    out += ",\"flight\":";
    out += live::FlightRecorder::instance().dump_json(opts.flight_tail);
  }
#endif
  out += '}';
  return out;
}

PeriodicReporter::PeriodicReporter(
    std::uint64_t period_ms, std::function<void(const MetricsSnapshot&)> publish)
    : publish_(std::move(publish)) {
  if (!publish_) throw std::invalid_argument("PeriodicReporter: null publish");
  if (period_ms == 0) throw std::invalid_argument("PeriodicReporter: period 0");
  thread_ = std::thread([this, period_ms] { loop(period_ms); });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicReporter::loop(std::uint64_t period_ms) {
  std::unique_lock lk(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(lk, std::chrono::milliseconds(period_ms),
                                       [this] { return stopping_; });
    lk.unlock();
    publish_(Registry::instance().snapshot());
    publishes_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
    if (stopping) return;  // the post-stop publish above was the final one
  }
}

}  // namespace prism::obs
