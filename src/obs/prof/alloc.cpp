#include "obs/prof/alloc.hpp"

#if PRISM_OBS_ENABLED

#include <atomic>
#include <cstdlib>
#include <new>

namespace prism::obs::prof {

namespace {

// Per-thread tally.  Plain integers with constant initialization: the
// counting path must never allocate (operator new would recurse) and must
// be safe during TLS setup of other variables, so this is deliberately the
// most boring possible storage.
struct ThreadTally {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};
thread_local ThreadTally t_tally;

// Process-wide tally, sharded to keep concurrent allocators off each
// other's cache lines (same scheme as obs::Counter).  Constant-initialized
// so interposed allocations during static init are safe.
constexpr unsigned kShards = 16;

struct alignas(64) Shard {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
};
Shard g_shards[kShards];

Shard& shard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return g_shards[idx];
}

inline void count_alloc(std::size_t size) noexcept {
  t_tally.allocs += 1;
  t_tally.bytes += size;
  Shard& s = shard();
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  s.bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void count_free() noexcept {
  t_tally.frees += 1;
  shard().frees.fetch_add(1, std::memory_order_relaxed);
}

void* checked_alloc(std::size_t size) {
  // malloc(0) may return nullptr legally; operator new must not.
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) {
      count_alloc(size);
      return p;
    }
    if (std::new_handler h = std::get_new_handler())
      h();
    else
      throw std::bad_alloc();
  }
}

void* checked_alloc_aligned(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  // aligned_alloc requires size % align == 0 on some libcs; round up.
  const std::size_t rounded = (size + align - 1) / align * align;
  for (;;) {
    if (void* p = std::aligned_alloc(align, rounded)) {
      count_alloc(size);
      return p;
    }
    if (std::new_handler h = std::get_new_handler())
      h();
    else
      throw std::bad_alloc();
  }
}

}  // namespace

AllocStats thread_alloc_stats() {
  return {t_tally.allocs, t_tally.frees, t_tally.bytes};
}

AllocStats process_alloc_stats() {
  AllocStats out;
  for (const Shard& s : g_shards) {
    out.allocs += s.allocs.load(std::memory_order_relaxed);
    out.frees += s.frees.load(std::memory_order_relaxed);
    out.bytes += s.bytes.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace prism::obs::prof

// ----------------------------------------------------------- interposition
//
// Counting replacements for the global allocation functions ([new.delete]
// replaceability).  Each forwards to malloc/free, so sanitizer runtimes —
// which intercept at the malloc layer — still see and check every block,
// and new/delete stay mismatch-consistent from their point of view.

namespace prof = prism::obs::prof;

void* operator new(std::size_t size) { return prof::checked_alloc(size); }

void* operator new[](std::size_t size) { return prof::checked_alloc(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  return prof::checked_alloc_aligned(size,
                                     static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return prof::checked_alloc_aligned(size,
                                     static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return prof::checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return prof::checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return prof::checked_alloc_aligned(size,
                                       static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return prof::checked_alloc_aligned(size,
                                       static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept {
  if (p) prof::count_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  if (p) prof::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept {
  operator delete[](p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  if (p) prof::count_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  if (p) prof::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  if (p) prof::count_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  if (p) prof::count_free();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete[](p);
}

#endif  // PRISM_OBS_ENABLED
