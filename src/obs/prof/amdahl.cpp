#include "obs/prof/amdahl.hpp"

#include <cmath>
#include <map>

namespace prism::obs::prof {

AmdahlFit fit_amdahl(
    const std::vector<std::pair<unsigned, double>>& wall_ms_by_threads) {
  AmdahlFit fit;
  // Average duplicates so repeated sweeps at one thread count don't weight
  // the regression toward that count.
  std::map<unsigned, std::pair<double, unsigned>> by_n;
  for (const auto& [n, ms] : wall_ms_by_threads) {
    if (n == 0 || ms <= 0 || !std::isfinite(ms)) continue;
    auto& [sum, cnt] = by_n[n];
    sum += ms;
    ++cnt;
  }
  const auto it1 = by_n.find(1);
  if (it1 == by_n.end() || by_n.size() < 2) return fit;
  fit.t1_ms = it1->second.first / it1->second.second;
  if (fit.t1_ms <= 0) return fit;

  double num = 0, den = 0;
  for (const auto& [n, acc] : by_n) {
    if (n == 1) continue;
    const double y = (acc.first / acc.second) / fit.t1_ms;
    const double inv = 1.0 / static_cast<double>(n);
    const double w = 1.0 - inv;
    num += w * (y - inv);
    den += w * w;
  }
  if (den <= 0) return fit;
  fit.serial_fraction = num / den;
  fit.valid = true;
  fit.points = static_cast<unsigned>(by_n.size());

  double sq = 0;
  unsigned m = 0;
  for (const auto& [n, acc] : by_n) {
    if (n == 1) continue;
    const double resid = acc.first / acc.second - amdahl_predict_ms(fit, n);
    sq += resid * resid;
    ++m;
  }
  fit.rmse_ms = m ? std::sqrt(sq / m) : 0;
  return fit;
}

double amdahl_predict_ms(const AmdahlFit& fit, unsigned threads) {
  if (!fit.valid || threads == 0) return 0;
  return fit.t1_ms * (fit.serial_fraction +
                      (1.0 - fit.serial_fraction) /
                          static_cast<double>(threads));
}

}  // namespace prism::obs::prof
