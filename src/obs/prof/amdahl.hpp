// Amdahl serial-fraction fit over a thread-sweep (DESIGN.md §13).
//
// The replication bench times each workload at 1, 2, ... N worker threads.
// Fitting Amdahl's law  T(n) = T1 * (s + (1 - s) / n)  to those wall times
// turns the sweep into a single diagnostic number: the measured serial
// fraction s.  s near 0 means the harness scales; s near 1 means it is
// serialized (lock convoy, one big scenario, queue-wait); s above 1 is the
// pathological regime the ROADMAP flags — parallelism *adds* cost beyond
// full serialization (oversubscription, pool overhead exceeding the work).
//
// The fit anchors T1 at the measured single-thread time and least-squares
// s over the remaining points:  with y_n = T(n)/T1,
//   y_n = s * (1 - 1/n) + 1/n   =>   s = sum(w_n * (y_n - 1/n)) / sum(w_n^2)
// where w_n = 1 - 1/n.  Pure function, unit-tested in isolation.
#pragma once

#include <utility>
#include <vector>

namespace prism::obs::prof {

struct AmdahlFit {
  bool valid = false;        ///< >= 2 distinct thread counts incl. n == 1
  double serial_fraction = 0;///< s; unclamped, may exceed 1 (see header)
  double t1_ms = 0;          ///< anchor: measured single-thread wall time
  double rmse_ms = 0;        ///< fit residual over the non-serial points
  unsigned points = 0;       ///< thread counts that entered the fit
};

/// Fits Amdahl's law to (threads, wall_ms) samples.  Requires one sample
/// with threads == 1 (the anchor) and at least one with threads > 1;
/// returns valid == false otherwise.  Duplicate thread counts are averaged.
AmdahlFit fit_amdahl(
    const std::vector<std::pair<unsigned, double>>& wall_ms_by_threads);

/// T(n) predicted by a fit (valid fits only).
double amdahl_predict_ms(const AmdahlFit& fit, unsigned threads);

}  // namespace prism::obs::prof
