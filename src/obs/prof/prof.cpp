#include "obs/prof/prof.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#if PRISM_OBS_ENABLED
#include "obs/obs.hpp"
#endif

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#define PRISM_PROF_HAVE_PERF 1
#else
#define PRISM_PROF_HAVE_PERF 0
#endif

namespace prism::obs::prof {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kOff:
      return "off";
    case Backend::kPerfEvent:
      return "perf_event";
    case Backend::kFallback:
      return "rusage_fallback";
  }
  return "unknown";
}

namespace {

std::uint64_t steady_ns() {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock::now().time_since_epoch())
          .count());
}

}  // namespace

#if !PRISM_OBS_ENABLED

// PRISM_OBS=OFF: the plane is compiled out.  Scopes still exist (callers
// need no guards) but measure wall time only and report Backend::kOff.
Backend resolve_backend(bool) { return Backend::kOff; }
Backend backend() { return Backend::kOff; }

CounterScope::CounterScope() : backend_(Backend::kOff) {
  start_.wall_ns = steady_ns();
}
CounterScope::CounterScope(Backend) : CounterScope() {}

CounterDelta CounterScope::delta() const {
  CounterDelta d;
  d.backend = Backend::kOff;
  d.wall_ns = steady_ns() - start_.wall_ns;
  return d;
}

#else  // PRISM_OBS_ENABLED

namespace {

#if PRISM_PROF_HAVE_PERF

/// One perf fd per counter kind, per thread.  Counters are opened with the
/// thread as target and run from open to thread exit; scopes difference
/// their readings.  An fd of -1 means "this kind is unavailable here" —
/// hardware kinds commonly are (no PMU in VMs), software kinds almost never.
struct PerfFds {
  int task_clock = -1;
  int ctx_switches = -1;
  int cycles = -1;
  int instructions = -1;
  int cache_misses = -1;

  ~PerfFds() {
    for (int fd : {task_clock, ctx_switches, cycles, instructions,
                   cache_misses})
      if (fd >= 0) ::close(fd);
  }
};

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // user-space work is what the harness profiles
  attr.exclude_hv = 1;
  attr.inherit = 0;  // per-thread scoping: children are not aggregated
  const long fd =
      ::syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                /*group_fd=*/-1, /*flags=*/0);
  return fd < 0 ? -1 : static_cast<int>(fd);
}

/// This thread's counters, opened lazily on first profiled scope.
PerfFds& thread_perf_fds() {
  thread_local PerfFds fds = [] {
    PerfFds f;
    f.task_clock = open_counter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
    f.ctx_switches =
        open_counter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES);
    f.cycles = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    f.instructions =
        open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    f.cache_misses =
        open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    return f;
  }();
  return fds;
}

std::uint64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::uint64_t v = 0;
  if (::read(fd, &v, sizeof v) != static_cast<ssize_t>(sizeof v)) return 0;
  return v;
}

/// Absolute readings for the calling thread (perf rung).
CounterDelta perf_absolute() {
  PerfFds& fds = thread_perf_fds();
  CounterDelta d;
  d.backend = Backend::kPerfEvent;
  d.wall_ns = steady_ns();
  d.task_clock_ns = read_counter(fds.task_clock);
  d.context_switches = read_counter(fds.ctx_switches);
  d.cycles = read_counter(fds.cycles);
  d.instructions = read_counter(fds.instructions);
  d.cache_misses = read_counter(fds.cache_misses);
  d.sw_valid = fds.task_clock >= 0;
  d.hw_valid = fds.cycles >= 0 && fds.instructions >= 0;
  return d;
}

std::uint64_t timeval_ns(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(tv.tv_usec) * 1'000ull;
}

/// Absolute readings for the calling thread (rusage rung).
CounterDelta rusage_absolute() {
  CounterDelta d;
  d.backend = Backend::kFallback;
  d.wall_ns = steady_ns();
  rusage ru;
  if (::getrusage(RUSAGE_THREAD, &ru) == 0) {
    d.task_clock_ns = timeval_ns(ru.ru_utime) + timeval_ns(ru.ru_stime);
    d.context_switches = static_cast<std::uint64_t>(ru.ru_nvcsw) +
                         static_cast<std::uint64_t>(ru.ru_nivcsw);
    d.sw_valid = true;
  }
  return d;
}

#else  // !PRISM_PROF_HAVE_PERF

CounterDelta perf_absolute() {
  CounterDelta d;
  d.backend = Backend::kFallback;
  d.wall_ns = steady_ns();
  return d;
}

CounterDelta rusage_absolute() { return perf_absolute(); }

#endif  // PRISM_PROF_HAVE_PERF

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

CounterDelta absolute_for(Backend b) {
  switch (b) {
    case Backend::kPerfEvent:
      return perf_absolute();
    case Backend::kFallback:
      return rusage_absolute();
    case Backend::kOff:
      break;
  }
  CounterDelta d;
  d.backend = Backend::kOff;
  d.wall_ns = steady_ns();
  return d;
}

}  // namespace

Backend resolve_backend(bool force_fallback) {
  if (const char* v = std::getenv("PRISM_PROF");
      v != nullptr && std::strcmp(v, "off") == 0)
    return Backend::kOff;
  if (force_fallback) return Backend::kFallback;
#if PRISM_PROF_HAVE_PERF
  // Probe once with the cheapest software event: if the syscall itself is
  // denied (seccomp, perf_event_paranoid, kernel without perf) every other
  // open fails the same way and the ladder drops to rusage.
  const int fd = open_counter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
  if (fd >= 0) {
    ::close(fd);
    return Backend::kPerfEvent;
  }
#endif
  return Backend::kFallback;
}

Backend backend() {
  static const Backend b =
      resolve_backend(env_flag("PRISM_PROF_FORCE_FALLBACK"));
  return b;
}

CounterScope::CounterScope() : CounterScope(backend()) {}

CounterScope::CounterScope(Backend forced)
    : backend_(forced), start_(absolute_for(forced)) {}

CounterDelta CounterScope::delta() const {
  const CounterDelta now = absolute_for(backend_);
  CounterDelta d;
  d.backend = backend_;
  d.wall_ns = now.wall_ns - start_.wall_ns;
  d.task_clock_ns = now.task_clock_ns - start_.task_clock_ns;
  d.context_switches = now.context_switches - start_.context_switches;
  d.cycles = now.cycles - start_.cycles;
  d.instructions = now.instructions - start_.instructions;
  d.cache_misses = now.cache_misses - start_.cache_misses;
  d.sw_valid = now.sw_valid && start_.sw_valid;
  d.hw_valid = now.hw_valid && start_.hw_valid;
  return d;
}

std::uint64_t prof_now_ns() { return ::prism::obs::now_ns(); }

WorkerClock::WorkerClock(const char* prefix)
    : prefix_(prefix), t0_ns_(prof_now_ns()) {}

WorkerClock::~WorkerClock() {
  const std::uint64_t lifetime = prof_now_ns() - t0_ns_;
  const std::uint64_t idle = idle_ns_ < lifetime ? idle_ns_ : lifetime;
  auto& reg = Registry::instance();
  // Runtime-assembled names, so no function-local-static caching here: a
  // WorkerClock flushes once per thread lifetime, not per operation.
  const std::string p(prefix_);
  reg.counter(p + ".busy_ns").add(lifetime - idle);
  reg.counter(p + ".idle_ns").add(idle);
  reg.counter(p + ".threads").add(1);
}

#endif  // PRISM_OBS_ENABLED

}  // namespace prism::obs::prof
