// Self-profiling plane: hardware/software counter scopes (DESIGN.md §13).
//
// The obs stack from §8–§9 can say *that* the harness is slow; this plane
// exists to say *why*.  It wraps Linux perf_event_open in RAII scopes that
// measure cycles, instructions, cache misses, context switches, and
// task-clock over a region, with a probed fallback ladder for environments
// (containers, CI, non-Linux) where the syscall is denied:
//
//   rung 1  perf_event_open, hardware + software events   (hw_valid == true)
//   rung 2  perf_event_open, software events only         (no PMU in VMs)
//   rung 3  getrusage(RUSAGE_THREAD) + steady_clock       (syscall denied)
//
// The probe runs once per process, degrades silently, and records which
// backend was used so every CounterDelta is self-describing.  Environment
// knobs: PRISM_PROF=off disables the plane at runtime (scopes still measure
// wall time); PRISM_PROF_FORCE_FALLBACK=1 pins rung 3 (used by the tests to
// exercise the fallback on boxes where perf works).
//
// Counters are opened once per thread and run continuously; a CounterScope
// merely snapshots them at construction and subtracts on delta().  Scopes
// therefore nest naturally (an outer delta always covers an inner one) and
// cost five read(2) calls per delta on the perf rungs — cheap enough per
// replication or per workload, not meant per simulated event.
//
// Everything here is compiled out by PRISM_OBS=OFF except the types
// themselves (deltas read all-zero, backend() == Backend::kOff), so callers
// never need their own #if guards.
#pragma once

#include <cstdint>
#include <string>

#ifndef PRISM_OBS_ENABLED
#define PRISM_OBS_ENABLED 1
#endif

namespace prism::obs::prof {

/// Which measurement rung the process resolved to (see ladder above).
enum class Backend {
  kOff,       ///< PRISM_PROF=off or PRISM_OBS=OFF build: wall clock only
  kPerfEvent, ///< perf_event_open (hw_valid tells hw from sw-only)
  kFallback,  ///< getrusage(RUSAGE_THREAD) + steady_clock
};

const char* backend_name(Backend b);

/// Counter readings over a region.  Fields an active backend cannot measure
/// are zero with the matching *_valid flag false; consumers must check the
/// flags (or backend) before dividing by them.
struct CounterDelta {
  Backend backend = Backend::kOff;
  std::uint64_t wall_ns = 0;          ///< steady_clock, always valid
  std::uint64_t task_clock_ns = 0;    ///< on-CPU ns of this thread
  std::uint64_t context_switches = 0; ///< sched-out events (vol + invol)
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  bool hw_valid = false;  ///< cycles/instructions/cache_misses measured
  bool sw_valid = false;  ///< task_clock/context_switches measured

  /// Instructions per cycle; 0 when hardware counters are unavailable.
  double ipc() const {
    return hw_valid && cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  /// On-CPU fraction of wall time; 0 when software counters are unavailable.
  double cpu_fraction() const {
    return sw_valid && wall_ns > 0 ? static_cast<double>(task_clock_ns) /
                                         static_cast<double>(wall_ns)
                                   : 0.0;
  }
};

/// The process-wide resolved backend.  First call probes (perf syscall +
/// environment knobs) and caches; later calls are a load.  Always kOff in a
/// PRISM_OBS=OFF build.
Backend backend();

/// Probe logic behind backend(), re-run on every call (for tests): resolves
/// what the ladder would pick with `force_fallback` pinning rung 3.
Backend resolve_backend(bool force_fallback);

/// RAII-ish counter scope over the calling thread.  Construction snapshots
/// the thread's counters; delta() subtracts (callable repeatedly; each call
/// re-reads, so nested scopes and incremental sampling both work).  The
/// scope must be read on the thread that constructed it.
class CounterScope {
 public:
  CounterScope();
  /// Test/CI hook: measure with an explicit backend instead of backend().
  explicit CounterScope(Backend forced);

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  CounterDelta delta() const;

 private:
  Backend backend_;
  CounterDelta start_;  ///< absolute readings at construction
};

#if PRISM_OBS_ENABLED

/// Busy/idle accounting for a long-lived service thread (pool worker, TP
/// reader/pump).  The owner marks its blocking waits via add_idle_ns(); the
/// destructor computes busy = lifetime - idle and publishes both to the obs
/// metrics registry as counters `<prefix>.busy_ns` / `<prefix>.idle_ns`
/// (plus `<prefix>.threads` counting completed lifetimes), so every service
/// thread's utilization is scrapeable without a bespoke stats path.
/// `prefix` must outlive the clock (string literals at call sites).
class WorkerClock {
 public:
  explicit WorkerClock(const char* prefix);
  ~WorkerClock();
  WorkerClock(const WorkerClock&) = delete;
  WorkerClock& operator=(const WorkerClock&) = delete;

  void add_idle_ns(std::uint64_t ns) { idle_ns_ += ns; }

  std::uint64_t idle_ns() const { return idle_ns_; }

 private:
  const char* prefix_;
  std::uint64_t t0_ns_;
  std::uint64_t idle_ns_ = 0;
};

/// Monotonic nanosecond timestamp for WorkerClock bookkeeping (same epoch
/// as obs::now_ns; redeclared here so prof users need not pull trace.hpp).
std::uint64_t prof_now_ns();

#else  // !PRISM_OBS_ENABLED — accounting vanishes with the plane.

class WorkerClock {
 public:
  explicit WorkerClock(const char*) {}
  void add_idle_ns(std::uint64_t) {}
  std::uint64_t idle_ns() const { return 0; }
};

inline std::uint64_t prof_now_ns() { return 0; }

#endif  // PRISM_OBS_ENABLED

}  // namespace prism::obs::prof
