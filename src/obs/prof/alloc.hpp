// Allocation tracking for the profiling plane (DESIGN.md §13).
//
// The ROADMAP's arena-allocator item needs a baseline number — allocations
// per simulated event on the hot path — that external tools can't give
// without symbolized heap profiles.  This header provides it in-process:
// the matching alloc.cpp interposes the global operator new/delete family
// (guarded by the PRISM_OBS kill switch, so a -DPRISM_OBS=OFF build carries
// no interposition at all) and counts every allocation twice:
//
//   * a per-thread tally (plain thread_local integers, zero-cost TLS init,
//     no atomics) for exact single-thread scopes — the unit tests assert
//     alloc-counter exactness against a synthetic new/delete loop;
//   * a sharded process-wide tally (relaxed fetch_add on a cache-line
//     padded shard, same scheme as obs::Counter) so benches can difference
//     allocations across a multi-threaded region.
//
// Interposition only takes effect in binaries that link an object file from
// this translation unit; prof.cpp (and through it the thread pool and
// replication harness) references alloc symbols, so every prism binary that
// profiles also counts.  Binaries that never touch the profiling plane are
// left with the plain allocator.
#pragma once

#include <cstdint>

#ifndef PRISM_OBS_ENABLED
#define PRISM_OBS_ENABLED 1
#endif

namespace prism::obs::prof {

/// Monotonic allocation tallies.  `bytes` counts requested sizes on the
/// allocation side only (the deallocation path has no portable size).
struct AllocStats {
  std::uint64_t allocs = 0;  ///< operator new / new[] calls
  std::uint64_t frees = 0;   ///< operator delete / delete[] calls
  std::uint64_t bytes = 0;   ///< sum of requested allocation sizes

  AllocStats operator-(const AllocStats& o) const {
    return {allocs - o.allocs, frees - o.frees, bytes - o.bytes};
  }
};

#if PRISM_OBS_ENABLED

/// This thread's tallies since thread start.  Exact for work done on the
/// calling thread; all-zero in a PRISM_OBS=OFF build (no interposition).
AllocStats thread_alloc_stats();

/// Process-wide tallies since process start (racy-but-consistent sharded
/// scrape, exact once writers are quiescent — same contract as
/// obs::Counter::value()).
AllocStats process_alloc_stats();

#else  // !PRISM_OBS_ENABLED — alloc.cpp compiles to nothing; scopes read 0.

inline AllocStats thread_alloc_stats() { return {}; }
inline AllocStats process_alloc_stats() { return {}; }

#endif  // PRISM_OBS_ENABLED

/// True when this build interposes the allocator (PRISM_OBS on).
constexpr bool alloc_tracking_compiled_in() { return PRISM_OBS_ENABLED != 0; }

/// RAII delta of the calling thread's tallies: construction snapshots,
/// delta() subtracts.  Nestable for the same reason CounterScope is.
class AllocScope {
 public:
  AllocScope() : start_(thread_alloc_stats()) {}
  AllocStats delta() const { return thread_alloc_stats() - start_; }

 private:
  AllocStats start_;
};

/// As AllocScope but over the process-wide tallies (multi-threaded regions;
/// inexact while other threads allocate concurrently — that is the point).
class ProcessAllocScope {
 public:
  ProcessAllocScope() : start_(process_alloc_stats()) {}
  AllocStats delta() const { return process_alloc_stats() - start_; }

 private:
  AllocStats start_;
};

}  // namespace prism::obs::prof
