// Model-time time-series probes (DESIGN.md §9).
//
// Timeline records named series of (time, value) points — queue depths,
// buffer occupancy, per-class resource busy time, throttle level — sampled
// either on change (sample_changed) or at a fixed interval by a
// model-scheduled poller.  Timestamps are caller-supplied doubles in the
// pipeline's own clock (ns for the live IS, simulated ms for the models);
// the recorder never reads a clock, so hooked simulations stay
// deterministic.
//
// Exports:
//   * CSV ("series,time,value", series in name order, points in insertion
//     order) for plotting occupancy trajectories;
//   * Chrome trace-event counter JSON ('C' phase, ts scaled to µs) —
//     Perfetto renders the simulated timeline directly, same file format as
//     the wall-clock span tracer (trace.hpp).
//
// Thread-safe; hook sites gate every call on a nullable observer pointer.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace prism::obs {

class Timeline {
 public:
  struct Point {
    double t = 0;
    double value = 0;
  };

  /// Appends a point unconditionally (fixed-interval pollers).
  void sample(const std::string& series, double t, double value);

  /// Appends only when `value` differs from the series' last value
  /// (on-change probes: queue depths, throttle level).
  void sample_changed(const std::string& series, double t, double value);

  std::vector<std::string> series_names() const;  ///< sorted
  /// Points of one series (copy); empty when unknown.
  std::vector<Point> series(const std::string& name) const;
  std::size_t total_points() const;
  bool empty() const { return total_points() == 0; }

  /// "series,time,value" rows, series in name order.
  std::string csv() const;

  /// Chrome trace-event JSON of 'C' (counter) events.  `us_per_unit`
  /// converts the recorded time unit to microseconds (1000 when times are
  /// simulated ms, 1e-3 when times are ns).
  std::string chrome_counter_json(double us_per_unit = 1000.0) const;
  void write_chrome_json(const std::string& path,
                         double us_per_unit = 1000.0) const;
  void write_csv(const std::string& path) const;

  /// Copies every series of `other` in under "<prefix><name>" (replication
  /// merge: per-rep timelines keep their identity side by side).
  void merge_prefixed(const Timeline& other, const std::string& prefix);

  void clear();

  Timeline() = default;
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;
  /// Movable so result bundles can carry a timeline by value.  The source
  /// must be quiescent (no concurrent samplers).
  Timeline(Timeline&& other) noexcept {
    std::lock_guard lk(other.mu_);
    series_ = std::move(other.series_);
  }
  Timeline& operator=(Timeline&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lk(mu_, other.mu_);
      series_ = std::move(other.series_);
    }
    return *this;
  }

 private:
  mutable std::mutex mu_;
  // Ordered map: exports iterate deterministically by series name.
  std::map<std::string, std::vector<Point>> series_;
};

}  // namespace prism::obs
