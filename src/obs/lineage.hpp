// Model-time record lineage tracing (DESIGN.md §9).
//
// The paper evaluates an instrumentation system by observing the IS itself:
// where monitoring latency is spent and where data dies (§2.3, §3.3.2).
// LineageTracer gives PRISM that primitive.  A capture point offers every
// record; each Nth offered record is admitted and accumulates per-stage
// timestamps as it moves through the pipeline
//
//   probe capture -> LIS buffer enqueue -> LIS flush/forward -> ISM input
//   -> ISM processed -> tool dispatch
//
// yielding per-stage latency breakdowns that telescope exactly to the
// end-to-end monitoring latency, and — for admitted records that never reach
// a tool — loss attribution to a named pipeline site (throttle suppression,
// LIS buffer overflow, full daemon pipe, TP backpressure, ISM queue residue).
//
// Timestamps are caller-supplied doubles in whatever clock the pipeline
// runs on: core::now_ns() for the live IS, simulated milliseconds for the
// ROCC / Vista models.  The tracer never reads a clock itself, so hooked
// simulations stay deterministic.  All entry points are thread-safe; hook
// sites gate every call on a nullable observer pointer, so unhooked runs
// never touch the tracer at all.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include <mutex>

#include "stats/summary.hpp"

namespace prism::obs {

/// Stages a record passes on its way from probe to tool (Fig. 2's path).
enum class PipelineStage : std::uint8_t {
  kCapture = 0,    ///< probe fired / record generated
  kLisEnqueue,     ///< accepted into a LIS buffer or daemon pipe
  kLisForward,     ///< left the LIS toward the TP (flush / forward / drain)
  kIsmInput,       ///< arrived at the ISM input side
  kIsmProcessed,   ///< processed (reordered, stamped) into the output buffer
  kToolDispatch,   ///< delivered to the attached tool(s)
};
inline constexpr std::size_t kPipelineStageCount = 6;

std::string_view to_string(PipelineStage s);

/// Pipeline sites where an admitted record can die.
enum class LossSite : std::uint8_t {
  kThrottle = 0,     ///< suppressed by the tracing throttle
  kLisBuffer,        ///< local trace buffer overflow
  kLisPipe,          ///< daemon pipe full / wakeup skipped
  kTpBackpressure,   ///< transfer-protocol link refused the batch
  kIsmQueue,         ///< stranded in the ISM (unresolvable hold-back)
  kTpSendFailed,     ///< unretryable TP/pipe send failure (closed, broken)
  kFrameCorrupt,     ///< wire frame corrupted or aborted mid-write
  kLisDead,          ///< the record's LIS died (fault plane or organic)
  kRetryExhausted,   ///< transient send failures exceeded the retry budget
  /// Federation boundary (DESIGN.md §16): forwarded by an aggregator ISM
  /// but destroyed on the root-bound uplink (closed link or exhausted
  /// retries).  Attributed exactly once, at the shard that lost it — the
  /// root never saw the record.
  kAggUplink,
  kAggDead,          ///< destroyed with a dead aggregator shard
  kAggQueue,         ///< stranded in an aggregator's pre-reducer hold-back
};
inline constexpr std::size_t kLossSiteCount = 12;

std::string_view to_string(LossSite s);

/// A record's identity across the pipeline: packed (node, process, seq),
/// mirroring the ISM's stream key layout.
using LineageKey = std::uint64_t;

constexpr LineageKey lineage_key(std::uint32_t node, std::uint32_t process,
                                 std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(node) << 46) ^
         (static_cast<std::uint64_t>(process) << 28) ^ seq;
}

/// Aggregated lineage results.  Mergeable across replications (merge order
/// must be deterministic for bit-identical parallel runs — sim::replicate
/// merges in replication-index order).
struct LineageReport {
  std::uint64_t offered = 0;    ///< records seen at the capture point
  std::uint64_t admitted = 0;   ///< sampled into tracing (1-in-stride)
  std::uint64_t completed = 0;  ///< admitted records that reached a tool
  std::uint64_t lost = 0;       ///< admitted records attributed to a loss site
  std::uint64_t in_flight = 0;  ///< admitted, neither completed nor lost

  /// Latency of transition stage i -> i+1, over completed records.  A stage
  /// a record skipped inherits the previous stamp (zero-width), so each
  /// record's five deltas sum exactly to its end-to-end latency.
  std::array<stats::Summary, kPipelineStageCount - 1> stage;
  /// kCapture -> kToolDispatch, over completed records.
  stats::Summary end_to_end;

  std::array<std::uint64_t, kLossSiteCount> lost_at{};
  /// Age (capture -> loss) of records lost at each site.
  std::array<stats::Summary, kLossSiteCount> loss_age;

  /// Every admitted record is accounted for.
  bool conserved() const {
    return admitted == completed + lost + in_flight;
  }
  /// Losses with a named site / all losses (1 whenever lost > 0, by
  /// construction — the accessor exists so tests state the criterion).
  double attributed_loss_fraction() const;

  void merge(const LineageReport& other);

  /// Human-readable per-stage table (time unit is the caller's).
  std::string to_string() const;
  /// "transition,count,mean,min,max" rows plus loss-site rows.
  std::string csv() const;
};

/// Sampled per-record lineage tracer.  One instance observes one pipeline
/// (or one model replication); merge the reports across replications.
class LineageTracer {
 public:
  /// Admits every `stride`-th offered record (1 = trace everything).
  explicit LineageTracer(std::uint32_t stride = 1);

  /// Capture point: counts the record and, if it falls on the sampling
  /// stride, starts tracking it with a kCapture stamp at `t`.  Returns
  /// whether the record was admitted.  Re-offering a tracked key restarts
  /// its lineage.
  bool offer(LineageKey k, double t);

  /// Stamps a stage timestamp; no-op for untracked keys, so downstream
  /// stages stamp unconditionally and sampling stays a capture-point-only
  /// decision.
  void stamp(LineageKey k, PipelineStage s, double t);

  /// Terminal success: stamps kToolDispatch at `t` and folds the record
  /// into the report.  No-op for untracked keys.
  void complete(LineageKey k, double t);

  /// Terminal failure: attributes the record to `site` and folds it.
  void lose(LineageKey k, LossSite site, double t);

  /// Transfers a tracked record's lineage to a new key (the throttle
  /// renumbers per-stream sequence numbers of forwarded records).  No-op
  /// when `from` is untracked or the keys are equal.
  void remap(LineageKey from, LineageKey to);

  bool tracked(LineageKey k) const;
  std::uint32_t stride() const { return stride_; }
  std::uint64_t offered() const;
  std::uint64_t admitted() const;

  /// Folded terminals plus the current in-flight count.
  LineageReport report() const;

  LineageTracer(const LineageTracer&) = delete;
  LineageTracer& operator=(const LineageTracer&) = delete;

 private:
  struct Entry {
    std::array<double, kPipelineStageCount> t;
    std::uint32_t stamped = 0;  ///< bitmask of stamped stages
  };

  void fold_completed(const Entry& e);

  const std::uint32_t stride_;
  mutable std::mutex mu_;
  std::uint64_t offered_ = 0;
  std::unordered_map<LineageKey, Entry> live_;
  LineageReport done_;  ///< terminals folded so far (in_flight stays 0 here)
};

}  // namespace prism::obs
