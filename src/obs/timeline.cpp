#include "obs/timeline.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace prism::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

void Timeline::sample(const std::string& series, double t, double value) {
  std::lock_guard lk(mu_);
  series_[series].push_back(Point{t, value});
}

void Timeline::sample_changed(const std::string& series, double t,
                              double value) {
  std::lock_guard lk(mu_);
  auto& pts = series_[series];
  if (!pts.empty() && pts.back().value == value) return;
  pts.push_back(Point{t, value});
}

std::vector<std::string> Timeline::series_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, pts] : series_) out.push_back(name);
  return out;
}

std::vector<Timeline::Point> Timeline::series(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<Point>{} : it->second;
}

std::size_t Timeline::total_points() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& [name, pts] : series_) n += pts.size();
  return n;
}

std::string Timeline::csv() const {
  std::lock_guard lk(mu_);
  std::string out = "series,time,value\n";
  for (const auto& [name, pts] : series_) {
    for (const Point& p : pts) {
      out += name;
      out += ',';
      append_double(out, p.t);
      out += ',';
      append_double(out, p.value);
      out += '\n';
    }
  }
  return out;
}

std::string Timeline::chrome_counter_json(double us_per_unit) const {
  std::lock_guard lk(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [name, pts] : series_) {
    for (const Point& p : pts) {
      if (!first) out += ',';
      first = false;
      out += "\n{\"name\":\"";
      detail::append_json_escaped(out, name);
      out += "\",\"ph\":\"C\",\"ts\":";
      append_double(out, p.t * us_per_unit);
      out += ",\"pid\":0,\"tid\":0,\"args\":{\"value\":";
      append_double(out, p.value);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

namespace {

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("Timeline: cannot open " + path);
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!f) throw std::runtime_error("Timeline: write failed for " + path);
}

}  // namespace

void Timeline::write_chrome_json(const std::string& path,
                                 double us_per_unit) const {
  write_file(path, chrome_counter_json(us_per_unit));
}

void Timeline::write_csv(const std::string& path) const {
  write_file(path, csv());
}

void Timeline::merge_prefixed(const Timeline& other,
                              const std::string& prefix) {
  // Copy out first: self-merge and lock-order safety.
  std::map<std::string, std::vector<Point>> theirs;
  {
    std::lock_guard lk(other.mu_);
    theirs = other.series_;
  }
  std::lock_guard lk(mu_);
  for (auto& [name, pts] : theirs) {
    auto& dst = series_[prefix + name];
    dst.insert(dst.end(), pts.begin(), pts.end());
  }
}

void Timeline::clear() {
  std::lock_guard lk(mu_);
  series_.clear();
}

}  // namespace prism::obs
