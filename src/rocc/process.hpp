// Processes of the ROCC model.
//
// A RoccProcess issues a sequence of resource-occupancy requests: after each
// request completes, the process's Behavior is consulted for the next step
// (an optional pre-delay, a resource, and a demand).  "Multiple processes can
// generate requests concurrently.  If a resource is busy, the request waits
// in the queue of that particular resource ...  When a request is fully
// serviced, it signals the process that generated it, which then issues the
// next request" (§3.2.2).
//
// Behaviors for the three Fig. 8 process classes are provided as factories:
// instrumented application processes (compute/communicate cycles with a
// per-sample instrumentation cost), the periodic sampling daemon (the
// "time out" trigger in Fig. 8), and background other-user load.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/pipeline.hpp"
#include "rocc/resource.hpp"
#include "sim/engine.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace prism::rocc {

/// One step of a process's life: wait `delay_before`, then occupy
/// `resource` for `demand`.
struct Step {
  sim::Time delay_before = 0;
  ResourceKind resource = ResourceKind::kCpu;
  sim::Time demand = 0;
};

/// Yields the next step, or nullopt to terminate the process.
using Behavior = std::function<std::optional<Step>(stats::Rng&)>;

/// The resources a process can occupy.
struct ResourceSet {
  Resource* cpu = nullptr;
  Resource* network = nullptr;
  Resource* io = nullptr;

  Resource* get(ResourceKind k) const {
    switch (k) {
      case ResourceKind::kCpu: return cpu;
      case ResourceKind::kNetwork: return network;
      case ResourceKind::kIo: return io;
    }
    return nullptr;
  }
};

class RoccProcess {
 public:
  RoccProcess(sim::Engine& eng, std::uint32_t id, ProcessClass cls,
              ResourceSet resources, Behavior behavior, stats::Rng rng)
      : eng_(eng),
        id_(id),
        cls_(cls),
        res_(resources),
        behavior_(std::move(behavior)),
        rng_(rng) {
    if (!behavior_) throw std::invalid_argument("RoccProcess: null behavior");
  }

  RoccProcess(const RoccProcess&) = delete;
  RoccProcess& operator=(const RoccProcess&) = delete;

  void start() {
    if (started_) return;
    started_ = true;
    advance();
  }

  std::uint32_t id() const { return id_; }
  ProcessClass cls() const { return cls_; }
  std::uint64_t requests_completed() const { return completed_; }
  /// Sum of serviced demands, by resource kind.
  double demand_completed(ResourceKind k) const {
    return demand_done_[static_cast<int>(k)];
  }
  bool terminated() const { return terminated_; }

 private:
  void advance() {
    auto step = behavior_(rng_);
    if (!step) {
      terminated_ = true;
      return;
    }
    if (step->delay_before < 0 || step->demand <= 0)
      throw std::logic_error("RoccProcess: invalid step");
    const Step s = *step;
    eng_.schedule_after(s.delay_before, [this, s] { issue(s); });
  }

  void issue(const Step& s) {
    Resource* r = res_.get(s.resource);
    if (!r) throw std::logic_error("RoccProcess: no such resource");
    Request req;
    req.process_id = id_;
    req.cls = cls_;
    req.resource = s.resource;
    req.demand = s.demand;
    r->submit(std::move(req), [this, kind = s.resource](Request&& done) {
      ++completed_;
      demand_done_[static_cast<int>(kind)] += done.demand;
      advance();
    });
  }

  sim::Engine& eng_;
  std::uint32_t id_;
  ProcessClass cls_;
  ResourceSet res_;
  Behavior behavior_;
  stats::Rng rng_;
  bool started_ = false;
  bool terminated_ = false;
  std::uint64_t completed_ = 0;
  double demand_done_[3] = {0, 0, 0};
};

/// Application process: alternating CPU bursts and network operations.
/// Every `events_per_sample`-th cycle also pays `instr_cpu_cost` of CPU to
/// execute inserted instrumentation (0 disables).
Behavior compute_communicate_behavior(
    std::shared_ptr<const stats::Distribution> cpu_burst,
    std::shared_ptr<const stats::Distribution> network_op,
    double comm_probability = 1.0, double instr_cpu_cost = 0.0,
    unsigned events_per_sample = 0);

/// Sampling daemon (Paradyn Pd): every `period`, collect one sample from
/// each of `n_app_processes` local pipes (CPU demand `per_sample_cpu` each,
/// batched into a single CPU request) and forward the batch to the ISM
/// (network demand `batch_network_cost`).
Behavior sampling_daemon_behavior(sim::Time period, double per_sample_cpu,
                                  double batch_network_cost,
                                  unsigned n_app_processes);

/// Other-user background load: CPU bursts separated by idle think times.
Behavior background_load_behavior(
    std::shared_ptr<const stats::Distribution> cpu_burst,
    std::shared_ptr<const stats::Distribution> think_time);

/// Timer-driven process: fires at every multiple of `period` (timer-locked,
/// like a daemon on an interval timer), submitting a CPU request and — on
/// its completion — an optional network request.  Unlike RoccProcess, the
/// next wakeup does not wait for the previous request to complete, so the
/// wakeup rate stays horizon/period even when the node saturates.  To bound
/// buildup it skips a wakeup while more than `max_outstanding` of its
/// requests are in flight (a real daemon coalesces missed timer ticks).
class TimerProcess {
 public:
  TimerProcess(sim::Engine& eng, std::uint32_t id, ProcessClass cls,
               ResourceSet resources, sim::Time period, sim::Time cpu_demand,
               sim::Time net_demand, unsigned max_outstanding = 4);

  TimerProcess(const TimerProcess&) = delete;
  TimerProcess& operator=(const TimerProcess&) = delete;

  /// Schedules wakeups at period, 2*period, ... (forever; the engine's
  /// run_until horizon bounds the run).
  void start();

  ProcessClass cls() const { return cls_; }
  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t skipped() const { return skipped_; }
  std::uint64_t requests_completed() const { return completed_; }

  /// Attaches the model-time observability sink (may be null).  Each wakeup
  /// becomes one lineage record keyed (node 0, process id, wakeup ordinal):
  /// capture at the timer fire, kLisEnqueue when the CPU request is
  /// submitted, kLisForward at CPU completion, kIsmInput + completion at
  /// network completion (or completion at CPU done when net_demand == 0);
  /// a skipped wakeup is a kLisPipe loss.  Call before start().
  void set_observer(obs::PipelineObserver* o) { observer_ = o; }

 private:
  void wake();

  sim::Engine& eng_;
  std::uint32_t id_;
  ProcessClass cls_;
  ResourceSet res_;
  sim::Time period_;
  sim::Time cpu_demand_;
  sim::Time net_demand_;
  unsigned max_outstanding_;
  unsigned outstanding_ = 0;
  obs::PipelineObserver* observer_ = nullptr;
  bool started_ = false;
  std::uint64_t wakeups_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace prism::rocc
