#include "rocc/resource.hpp"

#include <utility>

namespace prism::rocc {

void CpuResource::submit(Request req, Completion done) {
  if (!(req.demand > 0)) throw std::invalid_argument("CpuResource: demand <= 0");
  if (!done) throw std::invalid_argument("CpuResource: null completion");
  req.remaining = req.demand;
  req.t_issued = eng_.now();
  const std::uint32_t pid = req.process_id;
  proc(pid).pending.push_back(Entry{std::move(req), std::move(done), true});
  enqueue_ready(pid);
  if (tl_)
    tl_->sample_changed(name_ + ".ready", eng_.now(),
                        static_cast<double>(ready_.size()));
  if (!running_) dispatch();
}

void CpuResource::enqueue_ready(std::uint32_t pid) {
  ProcState& ps = procs_[pid];
  if (!ps.in_ready && !ps.pending.empty()) {
    ps.in_ready = true;
    ready_.push(pid);
  }
}

void CpuResource::dispatch() {
  if (ready_.empty()) {
    running_ = false;
    if (tl_) tl_->sample_changed(name_ + ".busy_class", eng_.now(), -1.0);
    return;
  }
  running_ = true;
  const std::uint32_t pid = ready_.pop();
  ProcState& ps = procs_[pid];
  ps.in_ready = false;
  Entry& entry = ps.pending.front();
  if (entry.first_service) {
    queueing_delay_.add(eng_.now() - entry.req.t_issued);
    entry.first_service = false;
  }
  const sim::Time slice = std::min(quantum_, entry.req.remaining);
  util_.begin_busy(eng_.now(), static_cast<int>(entry.req.cls));
  if (tl_) {
    tl_->sample_changed(name_ + ".busy_class", eng_.now(),
                        static_cast<double>(entry.req.cls));
    tl_->sample_changed(name_ + ".ready", eng_.now(),
                        static_cast<double>(ready_.size()));
  }
  eng_.schedule_after(slice, [this, pid, slice]() mutable {
    util_.end_busy(eng_.now());
    ProcState& p = procs_[pid];
    Entry& e = p.pending.front();
    e.req.remaining -= slice;
    if (e.req.remaining > 1e-12) {
      // Quantum expired with work left: preempt; the process re-enters the
      // ready ring at the tail, continuing the same request next turn.
      ++preemptions_;
    } else {
      e.req.remaining = 0;
      e.req.t_completed = eng_.now();
      ++completions_;
      Entry finished = std::move(p.pending.front());
      p.pending.pop_front();
      finished.done(std::move(finished.req));
    }
    enqueue_ready(pid);
    dispatch();
  });
}

void FifoResource::submit(Request req, Completion done) {
  if (!(req.demand > 0)) throw std::invalid_argument("FifoResource: demand <= 0");
  if (!done) throw std::invalid_argument("FifoResource: null completion");
  req.remaining = req.demand;
  req.t_issued = eng_.now();
  waiting_.push_back(Entry{std::move(req), std::move(done)});
  if (tl_)
    tl_->sample_changed(name_ + ".queue", eng_.now(),
                        static_cast<double>(waiting_.size()));
  if (!busy_) begin_service();
}

void FifoResource::begin_service() {
  if (waiting_.empty()) {
    busy_ = false;
    if (tl_) tl_->sample_changed(name_ + ".busy_class", eng_.now(), -1.0);
    return;
  }
  busy_ = true;
  in_service_.emplace(std::move(waiting_.front()));
  waiting_.pop_front();
  Entry& entry = *in_service_;
  queueing_delay_.add(eng_.now() - entry.req.t_issued);
  util_.begin_busy(eng_.now(), static_cast<int>(entry.req.cls));
  if (tl_) {
    tl_->sample_changed(name_ + ".busy_class", eng_.now(),
                        static_cast<double>(entry.req.cls));
    tl_->sample_changed(name_ + ".queue", eng_.now(),
                        static_cast<double>(waiting_.size()));
  }
  // The in-service entry lives in a member, not the closure — a FifoResource
  // never serves two requests at once, and [this] fits EventFn inline.
  eng_.schedule_after(entry.req.demand, [this] {
    util_.end_busy(eng_.now());
    Entry e = std::move(*in_service_);
    in_service_.reset();
    e.req.remaining = 0;
    e.req.t_completed = eng_.now();
    ++completions_;
    e.done(std::move(e.req));
    begin_service();
  });
}

}  // namespace prism::rocc
