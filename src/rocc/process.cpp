#include "rocc/process.hpp"

namespace prism::rocc {

Behavior compute_communicate_behavior(
    std::shared_ptr<const stats::Distribution> cpu_burst,
    std::shared_ptr<const stats::Distribution> network_op,
    double comm_probability, double instr_cpu_cost,
    unsigned events_per_sample) {
  if (!cpu_burst || !network_op)
    throw std::invalid_argument("compute_communicate_behavior: null dist");
  if (!(comm_probability >= 0 && comm_probability <= 1))
    throw std::invalid_argument("compute_communicate_behavior: bad p");
  // State machine: 0 = next is CPU burst, 1 = next is network op.
  auto state = std::make_shared<unsigned>(0);
  auto cycles = std::make_shared<std::uint64_t>(0);
  return [=](stats::Rng& rng) -> std::optional<Step> {
    if (*state == 0) {
      *state = 1;
      double demand = cpu_burst->sample(rng);
      ++*cycles;
      if (instr_cpu_cost > 0 && events_per_sample > 0 &&
          *cycles % events_per_sample == 0) {
        demand += instr_cpu_cost;
      }
      return Step{0, ResourceKind::kCpu, demand};
    }
    *state = 0;
    if (!rng.next_bernoulli(comm_probability)) {
      // Skip the communication phase this cycle; fall through to the next
      // CPU burst immediately.
      *state = 1;
      return Step{0, ResourceKind::kCpu, cpu_burst->sample(rng)};
    }
    return Step{0, ResourceKind::kNetwork, network_op->sample(rng)};
  };
}

Behavior sampling_daemon_behavior(sim::Time period, double per_sample_cpu,
                                  double batch_network_cost,
                                  unsigned n_app_processes) {
  if (!(period > 0))
    throw std::invalid_argument("sampling_daemon_behavior: period <= 0");
  if (!(per_sample_cpu > 0))
    throw std::invalid_argument("sampling_daemon_behavior: cpu cost <= 0");
  if (n_app_processes == 0)
    throw std::invalid_argument("sampling_daemon_behavior: no app processes");
  // State machine: 0 = wait out the sampling period then collect (CPU);
  // 1 = forward the batch (network).
  auto state = std::make_shared<unsigned>(0);
  return [=](stats::Rng&) -> std::optional<Step> {
    if (*state == 0) {
      *state = 1;
      return Step{period, ResourceKind::kCpu,
                  per_sample_cpu * n_app_processes};
    }
    *state = 0;
    if (batch_network_cost > 0)
      return Step{0, ResourceKind::kNetwork, batch_network_cost};
    // No forwarding cost configured: go straight back to the timer.
    *state = 1;
    return Step{period, ResourceKind::kCpu, per_sample_cpu * n_app_processes};
  };
}

Behavior background_load_behavior(
    std::shared_ptr<const stats::Distribution> cpu_burst,
    std::shared_ptr<const stats::Distribution> think_time) {
  if (!cpu_burst || !think_time)
    throw std::invalid_argument("background_load_behavior: null dist");
  return [=](stats::Rng& rng) -> std::optional<Step> {
    return Step{think_time->sample(rng), ResourceKind::kCpu,
                cpu_burst->sample(rng)};
  };
}

TimerProcess::TimerProcess(sim::Engine& eng, std::uint32_t id,
                           ProcessClass cls, ResourceSet resources,
                           sim::Time period, sim::Time cpu_demand,
                           sim::Time net_demand, unsigned max_outstanding)
    : eng_(eng),
      id_(id),
      cls_(cls),
      res_(resources),
      period_(period),
      cpu_demand_(cpu_demand),
      net_demand_(net_demand),
      max_outstanding_(max_outstanding) {
  if (!(period > 0)) throw std::invalid_argument("TimerProcess: period <= 0");
  if (!(cpu_demand > 0))
    throw std::invalid_argument("TimerProcess: cpu demand <= 0");
  if (net_demand < 0)
    throw std::invalid_argument("TimerProcess: net demand < 0");
  if (!res_.cpu) throw std::invalid_argument("TimerProcess: no CPU");
  if (net_demand > 0 && !res_.network)
    throw std::invalid_argument("TimerProcess: no network");
}

void TimerProcess::start() {
  if (started_) return;
  started_ = true;
  eng_.schedule_after(period_, [this] { wake(); });
}

void TimerProcess::wake() {
  // Re-arm first: the timer is free-running.
  eng_.schedule_after(period_, [this] { wake(); });
  ++wakeups_;
  // One lineage record per wakeup, keyed by the wakeup ordinal.
  const obs::LineageKey key =
      obs::lineage_key(0, id_, static_cast<std::uint64_t>(wakeups_));
  if (observer_) observer_->lineage.offer(key, eng_.now());
  if (outstanding_ >= max_outstanding_) {
    ++skipped_;
    // The daemon coalesced this tick: the sample it would have collected is
    // lost to local backpressure.
    if (observer_)
      observer_->lineage.lose(key, obs::LossSite::kLisPipe, eng_.now());
    return;
  }
  ++outstanding_;
  if (observer_)
    observer_->lineage.stamp(key, obs::PipelineStage::kLisEnqueue, eng_.now());
  Request req;
  req.process_id = id_;
  req.cls = cls_;
  req.resource = ResourceKind::kCpu;
  req.demand = cpu_demand_;
  res_.cpu->submit(std::move(req), [this, key](Request&&) {
    ++completed_;
    if (observer_)
      observer_->lineage.stamp(key, obs::PipelineStage::kLisForward,
                               eng_.now());
    if (net_demand_ > 0) {
      Request net;
      net.process_id = id_;
      net.cls = cls_;
      net.resource = ResourceKind::kNetwork;
      net.demand = net_demand_;
      res_.network->submit(std::move(net), [this, key](Request&&) {
        ++completed_;
        --outstanding_;
        if (observer_) {
          observer_->lineage.stamp(key, obs::PipelineStage::kIsmInput,
                                   eng_.now());
          observer_->lineage.complete(key, eng_.now());
        }
      });
    } else {
      --outstanding_;
      if (observer_) observer_->lineage.complete(key, eng_.now());
    }
  });
}

}  // namespace prism::rocc
