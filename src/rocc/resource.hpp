// System resources of the ROCC model (§3.2.2, Fig. 8).
//
// * CpuResource — a preemptive round-robin processor with a scheduling
//   quantum: "To ensure fair scheduling of processes, the operating system
//   (Unix) can preempt a process that needs to occupy a system resource for a
//   period of time longer than the specified quantum."  Per-class busy time
//   is tracked so the model can report daemon interference (absolute CPU time
//   of the IS class) and utilization shares.
// * FifoResource — a non-preemptive first-come-first-served resource
//   (the network in Fig. 8; also usable as a disk).
//
// "When a request is fully serviced, it signals the process that generated
// it" — completion callbacks implement that signal.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeline.hpp"
#include "rocc/request.hpp"
#include "sim/collectors.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"

namespace prism::rocc {

/// Invoked when a request's demand is fully serviced.
using Completion = std::function<void(Request&&)>;

class Resource {
 public:
  explicit Resource(sim::Engine& eng, std::string name)
      : eng_(eng), name_(std::move(name)), util_(eng.now()) {}
  virtual ~Resource() = default;
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Submits a request; `done` fires when the full demand has been served.
  virtual void submit(Request req, Completion done) = 0;

  const std::string& name() const { return name_; }
  /// Busy time attributed to a process class.
  double busy_time(ProcessClass c) const {
    return util_.busy_time(static_cast<int>(c));
  }
  double busy_time() const { return util_.busy_time(); }
  double utilization() const { return util_.utilization(); }
  double utilization(ProcessClass c) const {
    return util_.utilization(static_cast<int>(c));
  }
  /// Integrate busy-time accounting up to `t` (call at end of run).
  void finalize(sim::Time t) { util_.flush(t); }
  /// Busy time as of model time `t` without mutating the accumulator (safe
  /// for mid-run probes; enabled runs stay bit-identical).
  double busy_time_at(sim::Time t) const { return util_.busy_time_at(t); }
  double busy_time_at(sim::Time t, ProcessClass c) const {
    return util_.busy_time_at(t, static_cast<int>(c));
  }
  /// Attaches a model-time timeline (may be null to detach).  Occupancy
  /// samples land on "<name>.busy_class" (serving class, -1 idle) and
  /// "<name>.ready" / "<name>.queue" series.
  void set_timeline(obs::Timeline* tl) { tl_ = tl; }
  /// Waiting time from submission to first service, per completed request.
  const stats::Summary& queueing_delays() const { return queueing_delay_; }
  std::uint64_t completions() const { return completions_; }

 protected:
  sim::Engine& eng_;
  std::string name_;
  sim::UtilizationTracker util_;
  stats::Summary queueing_delay_;
  std::uint64_t completions_ = 0;
  obs::Timeline* tl_ = nullptr;
};

/// Fixed-capacity-growable circular FIFO of process ids — the CPU ready
/// ring.  A deque pays a block allocation every few hundred push/pop cycles;
/// this ring allocates only when it grows (never at steady state) and keeps
/// the round-robin rotation inside one contiguous line of memory, the
/// textbook circular-queue scheduler layout.
class ReadyRing {
 public:
  void push(std::uint32_t pid) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = pid;
    ++count_;
  }
  std::uint32_t pop() {
    const std::uint32_t pid = buf_[head_];
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return pid;
  }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

 private:
  void grow() {
    // Power-of-two capacity so the rotation is a mask, not a division.
    std::vector<std::uint32_t> next(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<std::uint32_t> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Preemptive round-robin CPU with a fixed quantum.
///
/// Scheduling is per *process* (keyed by Request::process_id), exactly like
/// Unix round-robin: each process with runnable work holds one slot in the
/// ready ring regardless of how many requests it has queued, and its
/// requests are served FIFO within that slot.  A process that stays
/// backlogged therefore receives its fair 1/(#ready) share — the mechanism
/// behind the §3.2.3 daemon starvation.
///
/// Process ids are small and dense (NodeModel assigns them sequentially), so
/// per-process state lives in a flat vector indexed by pid and the ready set
/// is a circular ring — the quantum loop does no hashing and, at steady
/// state, no allocation.
class CpuResource final : public Resource {
 public:
  CpuResource(sim::Engine& eng, std::string name, sim::Time quantum)
      : Resource(eng, std::move(name)), quantum_(quantum) {
    if (!(quantum > 0)) throw std::invalid_argument("CpuResource: quantum <= 0");
  }

  void submit(Request req, Completion done) override;

  sim::Time quantum() const { return quantum_; }
  /// Number of quantum-expiry preemptions (context switches forced by the
  /// scheduler, excluding voluntary completions).
  std::uint64_t preemptions() const { return preemptions_; }
  std::size_t ready_queue_length() const { return ready_.size(); }

 private:
  struct Entry {
    Request req;
    Completion done;
    bool first_service = true;
  };
  struct ProcState {
    std::deque<Entry> pending;
    bool in_ready = false;
  };

  void enqueue_ready(std::uint32_t pid);
  void dispatch();
  ProcState& proc(std::uint32_t pid) {
    if (pid >= procs_.size()) procs_.resize(pid + 1);
    return procs_[pid];
  }

  sim::Time quantum_;
  std::vector<ProcState> procs_;  ///< indexed by pid (dense, sequential)
  ReadyRing ready_;               ///< one slot per runnable process
  bool running_ = false;
  std::uint64_t preemptions_ = 0;
};

/// Non-preemptive FCFS resource (network link, disk).
class FifoResource final : public Resource {
 public:
  using Resource::Resource;

  void submit(Request req, Completion done) override;

  std::size_t queue_length() const { return waiting_.size(); }

 private:
  struct Entry {
    Request req;
    Completion done;
  };

  void begin_service();

  std::deque<Entry> waiting_;
  /// The request currently occupying the resource.  Holding it here keeps
  /// the scheduled completion closure at a bare [this] capture — inline in
  /// the engine's EventFn, so FCFS service allocates nothing per operation.
  std::optional<Entry> in_service_;
  bool busy_ = false;
};

}  // namespace prism::rocc
