// System resources of the ROCC model (§3.2.2, Fig. 8).
//
// * CpuResource — a preemptive round-robin processor with a scheduling
//   quantum: "To ensure fair scheduling of processes, the operating system
//   (Unix) can preempt a process that needs to occupy a system resource for a
//   period of time longer than the specified quantum."  Per-class busy time
//   is tracked so the model can report daemon interference (absolute CPU time
//   of the IS class) and utilization shares.
// * FifoResource — a non-preemptive first-come-first-served resource
//   (the network in Fig. 8; also usable as a disk).
//
// "When a request is fully serviced, it signals the process that generated
// it" — completion callbacks implement that signal.
#pragma once

#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/timeline.hpp"
#include "rocc/request.hpp"
#include "sim/collectors.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"

namespace prism::rocc {

/// Invoked when a request's demand is fully serviced.
using Completion = std::function<void(Request&&)>;

class Resource {
 public:
  explicit Resource(sim::Engine& eng, std::string name)
      : eng_(eng), name_(std::move(name)), util_(eng.now()) {}
  virtual ~Resource() = default;
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Submits a request; `done` fires when the full demand has been served.
  virtual void submit(Request req, Completion done) = 0;

  const std::string& name() const { return name_; }
  /// Busy time attributed to a process class.
  double busy_time(ProcessClass c) const {
    return util_.busy_time(static_cast<int>(c));
  }
  double busy_time() const { return util_.busy_time(); }
  double utilization() const { return util_.utilization(); }
  double utilization(ProcessClass c) const {
    return util_.utilization(static_cast<int>(c));
  }
  /// Integrate busy-time accounting up to `t` (call at end of run).
  void finalize(sim::Time t) { util_.flush(t); }
  /// Busy time as of model time `t` without mutating the accumulator (safe
  /// for mid-run probes; enabled runs stay bit-identical).
  double busy_time_at(sim::Time t) const { return util_.busy_time_at(t); }
  double busy_time_at(sim::Time t, ProcessClass c) const {
    return util_.busy_time_at(t, static_cast<int>(c));
  }
  /// Attaches a model-time timeline (may be null to detach).  Occupancy
  /// samples land on "<name>.busy_class" (serving class, -1 idle) and
  /// "<name>.ready" / "<name>.queue" series.
  void set_timeline(obs::Timeline* tl) { tl_ = tl; }
  /// Waiting time from submission to first service, per completed request.
  const stats::Summary& queueing_delays() const { return queueing_delay_; }
  std::uint64_t completions() const { return completions_; }

 protected:
  sim::Engine& eng_;
  std::string name_;
  sim::UtilizationTracker util_;
  stats::Summary queueing_delay_;
  std::uint64_t completions_ = 0;
  obs::Timeline* tl_ = nullptr;
};

/// Preemptive round-robin CPU with a fixed quantum.
///
/// Scheduling is per *process* (keyed by Request::process_id), exactly like
/// Unix round-robin: each process with runnable work holds one slot in the
/// ready ring regardless of how many requests it has queued, and its
/// requests are served FIFO within that slot.  A process that stays
/// backlogged therefore receives its fair 1/(#ready) share — the mechanism
/// behind the §3.2.3 daemon starvation.
class CpuResource final : public Resource {
 public:
  CpuResource(sim::Engine& eng, std::string name, sim::Time quantum)
      : Resource(eng, std::move(name)), quantum_(quantum) {
    if (!(quantum > 0)) throw std::invalid_argument("CpuResource: quantum <= 0");
  }

  void submit(Request req, Completion done) override;

  sim::Time quantum() const { return quantum_; }
  /// Number of quantum-expiry preemptions (context switches forced by the
  /// scheduler, excluding voluntary completions).
  std::uint64_t preemptions() const { return preemptions_; }
  std::size_t ready_queue_length() const { return ready_.size(); }

 private:
  struct Entry {
    Request req;
    Completion done;
    bool first_service = true;
  };
  struct ProcState {
    std::deque<Entry> pending;
    bool in_ready = false;
  };

  void enqueue_ready(std::uint32_t pid);
  void dispatch();

  sim::Time quantum_;
  std::unordered_map<std::uint32_t, ProcState> procs_;
  std::deque<std::uint32_t> ready_;  ///< one slot per runnable process
  bool running_ = false;
  std::uint64_t preemptions_ = 0;
};

/// Non-preemptive FCFS resource (network link, disk).
class FifoResource final : public Resource {
 public:
  using Resource::Resource;

  void submit(Request req, Completion done) override;

  std::size_t queue_length() const { return waiting_.size(); }

 private:
  struct Entry {
    Request req;
    Completion done;
  };

  void begin_service();

  std::deque<Entry> waiting_;
  bool busy_ = false;
};

}  // namespace prism::rocc
