// Assembled ROCC scenario: one node's CPU + network shared by the three
// process classes of Fig. 8, run for a fixed horizon, reporting the two
// Paradyn metrics of Table 5:
//
//   * Pd interference — "the absolute amount of CPU time required for daemon
//     execution" over the run (lower is better);
//   * utilizationPd — the share of CPU time consumed by the daemon (nominal
//     is best: high means the daemon competes with the application, low —
//     under contention — means the daemon is starved and pipes back up).
#pragma once

#include <memory>
#include <vector>

#include "obs/pipeline.hpp"
#include "rocc/process.hpp"
#include "rocc/resource.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"

namespace prism::rocc {

struct NodeMetrics {
  /// Simulated horizon actually observed.
  sim::Time span = 0;
  /// Absolute CPU busy time per class.
  double cpu_time_application = 0;
  double cpu_time_instrumentation = 0;
  double cpu_time_other = 0;
  /// CPU utilization fractions per class (busy time / span).
  double cpu_util_application = 0;
  double cpu_util_instrumentation = 0;
  double cpu_util_other = 0;
  /// Network busy time per class.
  double net_time_instrumentation = 0;
  double net_time_application = 0;
  /// Mean CPU ready-queue delay experienced by requests.
  double mean_cpu_queueing_delay = 0;
  /// Forced context switches on the CPU.
  std::uint64_t preemptions = 0;
  /// Application requests completed (throughput proxy).
  std::uint64_t app_requests_completed = 0;
  std::uint64_t daemon_requests_completed = 0;
};

/// A single-node ROCC scenario under construction.
class NodeModel {
 public:
  /// `quantum` is the round-robin scheduling quantum of the node's CPU.
  NodeModel(sim::Time quantum, stats::Rng rng);

  sim::Engine& engine() { return eng_; }
  Resource& cpu() { return *cpu_; }
  Resource& network() { return *net_; }

  /// Adds a process; returns its id.  Each process gets an independent
  /// child stream of the model's RNG.
  std::uint32_t add_process(ProcessClass cls, Behavior behavior);

  /// Adds a timer-locked process (see TimerProcess); returns a reference
  /// valid for the model's lifetime.  `max_outstanding` bounds how many of
  /// its requests may be in flight before wakeups are skipped.
  TimerProcess& add_timer_process(ProcessClass cls, sim::Time period,
                                  sim::Time cpu_demand, sim::Time net_demand,
                                  unsigned max_outstanding = 4);

  /// Attaches the model-time observability sink to the node (may be null to
  /// detach): timer processes trace lineage, resources stream occupancy
  /// onto the timeline, and — when `o->timeline_interval > 0` — run()
  /// drives a fixed-interval poller that samples queue lengths and
  /// per-class cumulative busy time at simulated-time ticks.  Call after
  /// adding all processes and before run().  Sampling is read-only:
  /// NodeMetrics of an observed run are bit-identical to an unobserved one.
  void set_observer(obs::PipelineObserver* o);

  /// Runs all processes for `horizon` simulated time and reports metrics.
  NodeMetrics run(sim::Time horizon);

 private:
  void poll(sim::Time t);

  sim::Engine eng_;
  stats::Rng rng_;
  std::unique_ptr<CpuResource> cpu_;
  std::unique_ptr<FifoResource> net_;
  std::vector<std::unique_ptr<RoccProcess>> processes_;
  std::vector<std::unique_ptr<TimerProcess>> timers_;
  obs::PipelineObserver* observer_ = nullptr;
};

}  // namespace prism::rocc
