// Requests in the Resource OCCupancy (ROCC) model (§3.2.2).
//
// "Requests ... are demands from application processes, other users'
// processes, and IS processes to occupy the system resources during the
// execution of an instrumented application program.  A request to occupy a
// resource specifies the amount of time needed for completion of a
// particular computation, communication, or I/O step of a process."
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace prism::rocc {

/// The process classes of Fig. 8.
enum class ProcessClass : std::uint8_t {
  kApplication = 0,      ///< instrumented application processes
  kInstrumentation = 1,  ///< IS processes (e.g. the Paradyn daemon)
  kOtherUser = 2,        ///< other users' / system processes
};

/// Resource kinds of the Paradyn ROCC instantiation.
enum class ResourceKind : std::uint8_t {
  kCpu = 0,
  kNetwork = 1,
  kIo = 2,
};

struct Request {
  std::uint32_t process_id = 0;
  ProcessClass cls = ProcessClass::kApplication;
  ResourceKind resource = ResourceKind::kCpu;
  /// Total occupancy demand (simulated time units).
  sim::Time demand = 0;
  /// Demand not yet serviced (maintained by preemptive resources).
  sim::Time remaining = 0;
  sim::Time t_issued = 0;
  sim::Time t_completed = 0;
};

}  // namespace prism::rocc
