#include "rocc/model.hpp"

#include <functional>
#include <stdexcept>

namespace prism::rocc {

NodeModel::NodeModel(sim::Time quantum, stats::Rng rng)
    : rng_(rng),
      cpu_(std::make_unique<CpuResource>(eng_, "cpu", quantum)),
      net_(std::make_unique<FifoResource>(eng_, "network")) {}

std::uint32_t NodeModel::add_process(ProcessClass cls, Behavior behavior) {
  const auto id = static_cast<std::uint32_t>(processes_.size());
  ResourceSet rs;
  rs.cpu = cpu_.get();
  rs.network = net_.get();
  processes_.push_back(std::make_unique<RoccProcess>(
      eng_, id, cls, rs, std::move(behavior), rng_.split()));
  return id;
}

TimerProcess& NodeModel::add_timer_process(ProcessClass cls, sim::Time period,
                                           sim::Time cpu_demand,
                                           sim::Time net_demand,
                                           unsigned max_outstanding) {
  const auto id =
      static_cast<std::uint32_t>(processes_.size() + timers_.size());
  ResourceSet rs;
  rs.cpu = cpu_.get();
  rs.network = net_.get();
  timers_.push_back(std::make_unique<TimerProcess>(
      eng_, id, cls, rs, period, cpu_demand, net_demand, max_outstanding));
  return *timers_.back();
}

void NodeModel::set_observer(obs::PipelineObserver* o) {
  observer_ = o;
  obs::Timeline* tl = o ? &o->timeline : nullptr;
  cpu_->set_timeline(tl);
  net_->set_timeline(tl);
  for (auto& t : timers_) t->set_observer(o);
}

void NodeModel::poll(sim::Time t) {
  obs::Timeline& tl = observer_->timeline;
  tl.sample("poll.cpu.ready_queue", t,
            static_cast<double>(cpu_->ready_queue_length()));
  tl.sample("poll.net.queue", t, static_cast<double>(net_->queue_length()));
  tl.sample("poll.cpu.busy.app", t,
            cpu_->busy_time_at(t, ProcessClass::kApplication));
  tl.sample("poll.cpu.busy.instr", t,
            cpu_->busy_time_at(t, ProcessClass::kInstrumentation));
  tl.sample("poll.cpu.busy.other", t,
            cpu_->busy_time_at(t, ProcessClass::kOtherUser));
  tl.sample("poll.net.busy.instr", t,
            net_->busy_time_at(t, ProcessClass::kInstrumentation));
}

NodeMetrics NodeModel::run(sim::Time horizon) {
  if (!(horizon > 0)) throw std::invalid_argument("NodeModel::run: horizon");
  for (auto& p : processes_) p->start();
  for (auto& t : timers_) t->start();
  if (observer_ && observer_->timeline_interval > 0) {
    // Fixed-interval simulated-time probe.  Poller events are read-only and
    // run_until pins the final clock to `horizon`, so an observed run's
    // NodeMetrics stay bit-identical.
    const sim::Time dt = observer_->timeline_interval;
    auto tick = std::make_shared<std::function<void(sim::Time)>>();
    // The stored function must not capture its own shared_ptr (a refcount
    // cycle that leaks); scheduled closures keep it alive, the body holds
    // only a weak_ptr.
    std::weak_ptr<std::function<void(sim::Time)>> weak = tick;
    *tick = [this, dt, horizon, weak](sim::Time t) {
      poll(t);
      const sim::Time next = t + dt;
      if (next <= horizon)
        if (auto keep = weak.lock())
          eng_.schedule_at(next, [keep, next] { (*keep)(next); });
    };
    if (dt <= horizon) eng_.schedule_at(dt, [tick, dt] { (*tick)(dt); });
  }
  eng_.run_until(horizon);
  cpu_->finalize(eng_.now());
  net_->finalize(eng_.now());

  NodeMetrics m;
  m.span = eng_.now();
  m.cpu_time_application = cpu_->busy_time(ProcessClass::kApplication);
  m.cpu_time_instrumentation = cpu_->busy_time(ProcessClass::kInstrumentation);
  m.cpu_time_other = cpu_->busy_time(ProcessClass::kOtherUser);
  m.cpu_util_application = cpu_->utilization(ProcessClass::kApplication);
  m.cpu_util_instrumentation =
      cpu_->utilization(ProcessClass::kInstrumentation);
  m.cpu_util_other = cpu_->utilization(ProcessClass::kOtherUser);
  m.net_time_instrumentation = net_->busy_time(ProcessClass::kInstrumentation);
  m.net_time_application = net_->busy_time(ProcessClass::kApplication);
  m.mean_cpu_queueing_delay = cpu_->queueing_delays().mean();
  m.preemptions = static_cast<CpuResource*>(cpu_.get())->preemptions();
  for (auto& p : processes_) {
    if (p->cls() == ProcessClass::kApplication)
      m.app_requests_completed += p->requests_completed();
    else if (p->cls() == ProcessClass::kInstrumentation)
      m.daemon_requests_completed += p->requests_completed();
  }
  for (auto& t : timers_) {
    if (t->cls() == ProcessClass::kApplication)
      m.app_requests_completed += t->requests_completed();
    else if (t->cls() == ProcessClass::kInstrumentation)
      m.daemon_requests_completed += t->requests_completed();
  }
  return m;
}

}  // namespace prism::rocc
