#include "rocc/model.hpp"

#include <stdexcept>

namespace prism::rocc {

NodeModel::NodeModel(sim::Time quantum, stats::Rng rng)
    : rng_(rng),
      cpu_(std::make_unique<CpuResource>(eng_, "cpu", quantum)),
      net_(std::make_unique<FifoResource>(eng_, "network")) {}

std::uint32_t NodeModel::add_process(ProcessClass cls, Behavior behavior) {
  const auto id = static_cast<std::uint32_t>(processes_.size());
  ResourceSet rs;
  rs.cpu = cpu_.get();
  rs.network = net_.get();
  processes_.push_back(std::make_unique<RoccProcess>(
      eng_, id, cls, rs, std::move(behavior), rng_.split()));
  return id;
}

TimerProcess& NodeModel::add_timer_process(ProcessClass cls, sim::Time period,
                                           sim::Time cpu_demand,
                                           sim::Time net_demand,
                                           unsigned max_outstanding) {
  const auto id =
      static_cast<std::uint32_t>(processes_.size() + timers_.size());
  ResourceSet rs;
  rs.cpu = cpu_.get();
  rs.network = net_.get();
  timers_.push_back(std::make_unique<TimerProcess>(
      eng_, id, cls, rs, period, cpu_demand, net_demand, max_outstanding));
  return *timers_.back();
}

NodeMetrics NodeModel::run(sim::Time horizon) {
  if (!(horizon > 0)) throw std::invalid_argument("NodeModel::run: horizon");
  for (auto& p : processes_) p->start();
  for (auto& t : timers_) t->start();
  eng_.run_until(horizon);
  cpu_->finalize(eng_.now());
  net_->finalize(eng_.now());

  NodeMetrics m;
  m.span = eng_.now();
  m.cpu_time_application = cpu_->busy_time(ProcessClass::kApplication);
  m.cpu_time_instrumentation = cpu_->busy_time(ProcessClass::kInstrumentation);
  m.cpu_time_other = cpu_->busy_time(ProcessClass::kOtherUser);
  m.cpu_util_application = cpu_->utilization(ProcessClass::kApplication);
  m.cpu_util_instrumentation =
      cpu_->utilization(ProcessClass::kInstrumentation);
  m.cpu_util_other = cpu_->utilization(ProcessClass::kOtherUser);
  m.net_time_instrumentation = net_->busy_time(ProcessClass::kInstrumentation);
  m.net_time_application = net_->busy_time(ProcessClass::kApplication);
  m.mean_cpu_queueing_delay = cpu_->queueing_delays().mean();
  m.preemptions = static_cast<CpuResource*>(cpu_.get())->preemptions();
  for (auto& p : processes_) {
    if (p->cls() == ProcessClass::kApplication)
      m.app_requests_completed += p->requests_completed();
    else if (p->cls() == ProcessClass::kInstrumentation)
      m.daemon_requests_completed += p->requests_completed();
  }
  for (auto& t : timers_) {
    if (t->cls() == ProcessClass::kApplication)
      m.app_requests_completed += t->requests_completed();
    else if (t->cls() == ProcessClass::kInstrumentation)
      m.daemon_requests_completed += t->requests_completed();
  }
  return m;
}

}  // namespace prism::rocc
