#include "fault/fault.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/live/flight.hpp"

namespace prism::fault {

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kSendFail: return "send_fail";
    case FaultKind::kFrameCorrupt: return "frame_corrupt";
    case FaultKind::kPartialFrame: return "partial_frame";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSlowConsumer: return "slow_consumer";
  }
  return "unknown";
}

std::string_view to_string(FaultSite s) {
  switch (s) {
    case FaultSite::kTpSend: return "tp_send";
    case FaultSite::kTpReceive: return "tp_receive";
    case FaultSite::kTpControl: return "tp_control";
    case FaultSite::kPipeSend: return "pipe_send";
    case FaultSite::kPipeFrame: return "pipe_frame";
    case FaultSite::kLisTick: return "lis_tick";
    case FaultSite::kIsmDispatch: return "ism_dispatch";
    case FaultSite::kToolCallback: return "tool_callback";
    case FaultSite::kSocketSend: return "socket_send";
    case FaultSite::kSocketFrame: return "socket_frame";
    case FaultSite::kShmPush: return "shm_push";
    case FaultSite::kShmFrame: return "shm_frame";
    case FaultSite::kAggForward: return "agg_forward";
  }
  return "unknown";
}

// ---------------------------------------------------------------- FaultPlan

FaultPlan& FaultPlan::add(FaultSpec spec) {
  if (spec.kind == FaultKind::kNone)
    throw std::invalid_argument("FaultPlan: spec with kind kNone");
  if (spec.probability < 0.0 || spec.probability > 1.0)
    throw std::invalid_argument("FaultPlan: probability outside [0,1]");
  if (spec.probability == 0.0 && spec.at_op == 0 && spec.every_n == 0)
    throw std::invalid_argument("FaultPlan: spec with no enabled trigger");
  if ((spec.kind == FaultKind::kStall ||
       spec.kind == FaultKind::kSlowConsumer) &&
      spec.stall_ns == 0)
    throw std::invalid_argument("FaultPlan: stall fault with stall_ns == 0");
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::send_failure(FaultSite site, double p,
                                   std::uint32_t node) {
  FaultSpec s;
  s.site = site;
  s.kind = FaultKind::kSendFail;
  s.probability = p;
  s.node = node;
  return add(s);
}

FaultPlan& FaultPlan::stall(FaultSite site, std::uint64_t ns, double p,
                            std::uint32_t node) {
  FaultSpec s;
  s.site = site;
  s.kind = site == FaultSite::kIsmDispatch || site == FaultSite::kToolCallback
               ? FaultKind::kSlowConsumer
               : FaultKind::kStall;
  s.probability = p;
  s.stall_ns = ns;
  s.node = node;
  return add(s);
}

FaultPlan& FaultPlan::crash(FaultSite site, std::uint64_t at_op,
                            std::uint32_t node) {
  FaultSpec s;
  s.site = site;
  s.kind = FaultKind::kCrash;
  s.at_op = at_op;
  s.node = node;
  return add(s);
}

FaultPlan& FaultPlan::corrupt_frame(double p, std::uint32_t node,
                                    FaultSite site) {
  if (site != FaultSite::kPipeFrame && site != FaultSite::kSocketFrame &&
      site != FaultSite::kShmFrame)
    throw std::invalid_argument("FaultPlan: corrupt_frame needs a frame site");
  FaultSpec s;
  s.site = site;
  s.kind = FaultKind::kFrameCorrupt;
  s.probability = p;
  s.node = node;
  return add(s);
}

FaultPlan& FaultPlan::partial_frame(std::uint64_t at_op, std::uint32_t node,
                                    FaultSite site) {
  if (site != FaultSite::kPipeFrame && site != FaultSite::kSocketFrame &&
      site != FaultSite::kShmFrame)
    throw std::invalid_argument("FaultPlan: partial_frame needs a frame site");
  FaultSpec s;
  s.site = site;
  s.kind = FaultKind::kPartialFrame;
  s.at_op = at_op;
  s.node = node;
  return add(s);
}

// ---------------------------------------------------------------- FaultInjector

namespace {

std::uint64_t lane_key(FaultSite site, std::uint32_t node) {
  return (static_cast<std::uint64_t>(site) << 32) | node;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

Fault FaultInjector::consult(FaultSite site, std::uint32_t node) {
  std::lock_guard lk(mu_);
  ++stats_.consults;
  const auto key = lane_key(site, node);
  auto [it, fresh] = lanes_.try_emplace(key);
  Lane& lane = it->second;
  if (fresh)
    lane.rng = stats::Rng(stats::Rng::hash_seed(
        seed_, static_cast<std::uint64_t>(site), node));
  ++lane.ops;

  Fault out;
  for (const auto& spec : plan_.specs()) {
    if (spec.site != site) continue;
    if (spec.node != kAnyNode && spec.node != node) continue;
    // Draw for every probabilistic matching spec, even after a fault has
    // been chosen: the lane's RNG consumption per consult is then a function
    // of the plan alone, never of which faults happened to fire.
    bool fires = false;
    if (spec.probability > 0.0 && lane.rng.next_bernoulli(spec.probability))
      fires = true;
    if (spec.at_op != 0 && lane.ops == spec.at_op) fires = true;
    if (spec.every_n != 0 && lane.ops % spec.every_n == 0) fires = true;
    if (fires && !out) {
      out.kind = spec.kind;
      out.stall_ns = spec.stall_ns;
    }
  }
  if (out) {
    ++stats_.fired;
    ++stats_.fired_at_site[static_cast<std::size_t>(site)];
    ++stats_.fired_kind[static_cast<std::size_t>(out.kind)];
    PRISM_OBS_FLIGHT(
        "fault",
        std::string(to_string(out.kind)) + "@" + std::string(to_string(site)),
        node, 0);
  }
  return out;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::string FaultInjectorStats::to_string() const {
  std::ostringstream os;
  os << "faults: consults=" << consults << " fired=" << fired << '\n';
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    if (fired_at_site[i] == 0) continue;
    os << "  at " << ::prism::fault::to_string(static_cast<FaultSite>(i))
       << ": " << fired_at_site[i] << '\n';
  }
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    if (fired_kind[i] == 0) continue;
    os << "  kind " << ::prism::fault::to_string(static_cast<FaultKind>(i))
       << ": " << fired_kind[i] << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------- RetryPolicy

std::uint64_t RetryPolicy::backoff_ns(std::uint32_t attempt,
                                      stats::Rng& rng) const {
  if (base_backoff_ns == 0) return 0;
  const std::uint32_t k = attempt == 0 ? 1 : attempt;
  double b = static_cast<double>(base_backoff_ns) *
             std::pow(multiplier, static_cast<double>(k - 1));
  if (jitter > 0.0) b *= 1.0 - jitter + 2.0 * jitter * rng.next_double();
  if (b < 0.0) b = 0.0;
  return static_cast<std::uint64_t>(b);
}

void sleep_ns(std::uint64_t ns) {
  if (ns == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace prism::fault
