// The fault plane for the live IS tier (DESIGN.md §10).
//
// The paper's thesis is that an instrumentation system must be evaluated
// before it is trusted (§1, Fig. 1); a production IS must additionally be
// evaluated under *failure*: pipes break mid-frame, daemons die, tools hang,
// links stall.  This module makes those failures a reproducible input
// instead of an accident: a FaultPlan declares what can go wrong at which
// named pipeline site, and a FaultInjector turns the plan plus one RNG seed
// into a deterministic stream of per-site decisions.
//
// Determinism under threads: every (site, node) pair owns an independent
// SplitMix64 lane (seeded by Rng::hash_seed(seed, site, node)) and its own
// consult counter, so the decision taken at the k-th consult of a lane never
// depends on scheduling of other lanes.  As long as each component consults
// its own lane in a deterministic op order (which the live tier guarantees
// for single-producer sites), two runs with the same seed inject byte-
// identical fault sequences — the property the chaos soak tests assert.
//
// The injector is runtime-nullable everywhere (like obs::PipelineObserver):
// components hold a FaultInjector* defaulting to nullptr, and every hook
// site short-circuits on null, so un-faulted runs are bit-identical to
// builds that never heard of this header.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stats/rng.hpp"

namespace prism::fault {

/// What the injector can make happen at a consulted site.
enum class FaultKind : std::uint8_t {
  kNone = 0,       ///< no fault this consult
  kSendFail,       ///< transient send failure (retryable)
  kFrameCorrupt,   ///< wire-frame corruption (bad magic on the pipe)
  kPartialFrame,   ///< writer dies mid-frame (header without payload)
  kStall,          ///< the operation stalls for stall_ns before proceeding
  kCrash,          ///< the component dies at this consult (permanent)
  kSlowConsumer,   ///< consumer-side delay of stall_ns per item
};
inline constexpr std::size_t kFaultKindCount = 7;

std::string_view to_string(FaultKind k);

/// Named sites in the live tier where the fault plane is consulted.
enum class FaultSite : std::uint8_t {
  kTpSend = 0,     ///< LIS -> ISM data-link send (one consult per batch)
  kTpReceive,      ///< ISM input side (one consult per batch received)
  kTpControl,      ///< ISM -> LIS control broadcast (one consult per node)
  kPipeSend,       ///< PosixPipeLink::send entry (per frame)
  kPipeFrame,      ///< PosixPipeLink frame boundary (corruption injection)
  kLisTick,        ///< daemon LIS sampling tick (crash / stall injection)
  kIsmDispatch,    ///< ISM output-buffer dispatch (slow-consumer injection)
  kToolCallback,   ///< per-tool consume() (crash isolation; node = tool idx)
  kSocketSend,     ///< SocketLink send entry (per frame; retryable failures)
  kSocketFrame,    ///< SocketLink frame boundary (corruption injection)
  kShmPush,        ///< ShmLink ring push entry (per frame; retryable failures)
  kShmFrame,       ///< ShmLink frame boundary (corruption injection)
  kAggForward,     ///< aggregator ISM -> root ISM uplink send (per pre-reduced
                   ///< batch; node = shard id; crash kills the aggregator)
};
inline constexpr std::size_t kFaultSiteCount = 13;

std::string_view to_string(FaultSite s);

/// Matches every node / tool index at a site.
inline constexpr std::uint32_t kAnyNode = 0xFFFFFFFFu;

/// One declarative fault rule.  Triggers (probability / at_op / every_n)
/// compose: the spec fires on a consult when any enabled trigger fires.
/// Probability draws happen on every consult of a matching lane regardless
/// of outcome, so the lane's RNG consumption — and therefore every later
/// decision — is independent of which faults actually fired.
struct FaultSpec {
  FaultSite site = FaultSite::kTpSend;
  FaultKind kind = FaultKind::kNone;
  double probability = 0.0;     ///< per-consult Bernoulli; 0 disables
  std::uint64_t at_op = 0;      ///< fires on the at_op-th consult (1-based); 0 disables
  std::uint64_t every_n = 0;    ///< fires on every n-th consult; 0 disables
  std::uint64_t stall_ns = 0;   ///< duration for kStall / kSlowConsumer
  std::uint32_t node = kAnyNode;///< restrict to one node / tool index
};

/// The decision returned by a consult.  Evaluates truthy when a fault fired.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t stall_ns = 0;
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// A declarative, seed-independent description of what can go wrong.
/// Build with add() or the named helpers; hand to a FaultInjector with a
/// seed to make it executable.
class FaultPlan {
 public:
  FaultPlan& add(FaultSpec spec);

  /// Transient send failures with probability `p` at `site`.
  FaultPlan& send_failure(FaultSite site, double p,
                          std::uint32_t node = kAnyNode);
  /// Stall of `ns` with probability `p` at `site`.
  FaultPlan& stall(FaultSite site, std::uint64_t ns, double p,
                   std::uint32_t node = kAnyNode);
  /// Component crash on the `at_op`-th consult of `site`.
  FaultPlan& crash(FaultSite site, std::uint64_t at_op,
                   std::uint32_t node = kAnyNode);
  /// Frame corruption with probability `p` at a wire frame boundary
  /// (kPipeFrame by default; pass kSocketFrame / kShmFrame for the real
  /// backends).
  FaultPlan& corrupt_frame(double p, std::uint32_t node = kAnyNode,
                           FaultSite site = FaultSite::kPipeFrame);
  /// Writer death mid-frame on the `at_op`-th wire frame.
  FaultPlan& partial_frame(std::uint64_t at_op, std::uint32_t node = kAnyNode,
                           FaultSite site = FaultSite::kPipeFrame);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

/// Aggregate injection accounting (what actually fired).
struct FaultInjectorStats {
  std::uint64_t consults = 0;
  std::uint64_t fired = 0;
  std::array<std::uint64_t, kFaultSiteCount> fired_at_site{};
  std::array<std::uint64_t, kFaultKindCount> fired_kind{};

  std::string to_string() const;
};

/// Executes a FaultPlan deterministically from a single seed.  Thread-safe;
/// all consults serialize on one mutex (fault runs trade a little hot-path
/// cost for exactness — null-injector runs pay nothing).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Consults the plan at `site` for `node` (or tool index).  Advances that
  /// lane's op counter and RNG deterministically; returns the first spec
  /// (in plan order) whose trigger fires, or a kNone Fault.
  Fault consult(FaultSite site, std::uint32_t node = 0);

  std::uint64_t seed() const { return seed_; }
  const FaultPlan& plan() const { return plan_; }
  FaultInjectorStats stats() const;

 private:
  struct Lane {
    stats::Rng rng{0};
    std::uint64_t ops = 0;
  };

  FaultPlan plan_;
  std::uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Lane> lanes_;
  FaultInjectorStats stats_;
};

/// Retry/backoff policy for send paths (TP data sends, pipe frames,
/// lifecycle-critical control messages).  Attempt k (1-based) backs off
/// base_backoff_ns * multiplier^(k-1), jittered by a uniform factor in
/// [1-jitter, 1+jitter].  max_attempts == 1 means "no retry".
struct RetryPolicy {
  std::uint32_t max_attempts = 3;
  std::uint64_t base_backoff_ns = 1'000;
  double multiplier = 2.0;
  double jitter = 0.25;

  /// Backoff before retry number `attempt` (1-based).  Draws one uniform
  /// from `rng` when jitter > 0.
  std::uint64_t backoff_ns(std::uint32_t attempt, stats::Rng& rng) const;
};

/// Sleeps the calling thread for `ns` (no-op when 0).  Used by injected
/// stalls and retry backoff so callers need no <thread> include.
void sleep_ns(std::uint64_t ns);

}  // namespace prism::fault
