#include "vista/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "queueing/analytic.hpp"

namespace prism::vista {

namespace {

/// Survival function of the straggle delay D (without the straggle_prob
/// factor): truncated Pareto(shape a, scale s, cap c).
double straggle_tail(const VistaIsmParams& p, double x) {
  if (x < p.straggle_scale_ms) return 1.0;
  if (x >= p.straggle_cap_ms) return 0.0;
  return std::pow(p.straggle_scale_ms / x, p.straggle_shape);
}

}  // namespace

double straggle_excess_second_moment(const VistaIsmParams& p, double gap) {
  // E[(D-g)+^2] = 2 * int_g^c (x - g) * Fbar(x) dx.  The identity already
  // covers the truncation atom at c: Fbar(x) for x < c includes P(D = c).
  const double c = p.straggle_cap_ms;
  if (gap >= c) return 0.0;
  const double lo = std::max(gap, p.straggle_scale_ms);
  // Below the Pareto scale Fbar = 1: the [gap, lo) strip integrates to
  // (lo - gap)^2 exactly.
  const double head = (lo - gap) * (lo - gap);
  // Simpson over [lo, c] with enough panels for the heavy tail.
  const int n = 2000;
  const double h = (c - lo) / n;
  double acc = 0;
  for (int i = 0; i <= n; ++i) {
    const double x = lo + h * i;
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    acc += w * (x - gap) * straggle_tail(p, x);
  }
  return head + 2.0 * acc * h / 3.0;
}

VistaAnalyticPrediction predict_vista_ism(const VistaIsmParams& p) {
  p.validate();
  VistaAnalyticPrediction out;
  const double lambda = p.processes / p.mean_interarrival_ms;  // per ms

  // Hold-back: per-record expected wait from straggles on its own stream.
  const double gap = p.mean_interarrival_ms;  // per-process gap
  out.mean_holdback_ms =
      p.straggle_prob * straggle_excess_second_moment(p, gap) / (2.0 * gap);

  // Fixed point on the pressure-dependent service time.
  const double coeff =
      p.miso ? p.miso_overhead_per_buffer_ms : p.siso_scan_overhead_ms;
  double service = p.proc_service_mean_ms;
  double wait = 0;
  for (int iter = 0; iter < 64; ++iter) {
    const double rho = lambda * service;
    if (rho >= 1.0) {
      out.stable = false;
      break;
    }
    const double var =
        p.proc_service_sigma_ms * p.proc_service_sigma_ms;
    wait = queueing::mg1_mean_wait(lambda, service, var);
    // Input-side backlog: waiting jobs + held records (Little).
    const double backlog = lambda * (wait + out.mean_holdback_ms);
    const double pressure = std::min(1.0, backlog / p.pressure_threshold);
    const double next = p.proc_service_mean_ms + coeff * p.processes * pressure;
    if (std::fabs(next - service) < 1e-9) {
      service = next;
      break;
    }
    service = next;
  }
  out.effective_service_ms = service;
  out.processor_utilization = std::min(1.0, lambda * service);
  if (!out.stable) {
    out.mean_wait_ms = std::numeric_limits<double>::infinity();
    out.mean_latency_ms = std::numeric_limits<double>::infinity();
    out.mean_input_buffer = std::numeric_limits<double>::infinity();
    return out;
  }
  out.mean_wait_ms = wait;
  out.mean_latency_ms = wait + service + out.mean_holdback_ms;
  out.mean_input_buffer = lambda * (wait + out.mean_holdback_ms);
  return out;
}

}  // namespace prism::vista
