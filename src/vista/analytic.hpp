// Analytic approximation of the Vista ISM model — the "model of the model".
//
// The paper validates simulations against queueing theory wherever closed
// forms exist (§5: "appropriate results from ... queuing theory").  For the
// Fig. 10 ISM this module assembles a first-order prediction of the two
// §3.3.2 metrics from:
//   * an M/G/1 Pollaczek-Khinchine waiting time at the data processor, with
//     the backlog-pressure service surcharge resolved by fixed-point
//     iteration (service depends on backlog depends on service);
//   * a renewal argument for hold-back: a record straggles with probability
//     q, picking up a truncated-Pareto extra delay D; a straggle exceeding
//     the per-process gap g holds successors for a total of (D-g)^2 / (2g),
//     so the mean hold-back per record is q * E[(D-g)+^2] / (2g);
//   * Little's law for the input-side buffer occupancy.
// Accuracy target: within ~35% of simulation at moderate loads (asserted by
// tests) — enough to bracket design decisions before running simulations.
#pragma once

#include "vista/ism_model.hpp"

namespace prism::vista {

struct VistaAnalyticPrediction {
  double processor_utilization = 0;
  double mean_wait_ms = 0;       ///< M/G/1 queue wait at the processor
  double mean_holdback_ms = 0;   ///< causal hold-back per record
  double mean_latency_ms = 0;    ///< wait + service + hold-back
  double mean_input_buffer = 0;  ///< Little: lambda * (wait + hold-back)
  double effective_service_ms = 0;
  bool stable = true;
};

/// First-order analytic prediction for the given parameters.
VistaAnalyticPrediction predict_vista_ism(const VistaIsmParams& params);

/// Mean of the positive part (D - g)+ squared for the straggle delay D
/// (truncated Pareto(shape, scale, cap)), by numeric quadrature.  Exposed
/// for tests.
double straggle_excess_second_moment(const VistaIsmParams& params, double gap);

}  // namespace prism::vista
