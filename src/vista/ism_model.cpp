#include "vista/ism_model.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>

#include "sim/arena.hpp"
#include "sim/collectors.hpp"
#include "sim/engine.hpp"
#include "stats/distributions.hpp"
#include "stats/summary.hpp"

namespace prism::vista {

void VistaIsmParams::validate() const {
  if (processes == 0) throw std::invalid_argument("VistaIsmParams: P == 0");
  if (!(mean_interarrival_ms > 0))
    throw std::invalid_argument("VistaIsmParams: inter-arrival <= 0");
  if (!(proc_service_mean_ms > 0))
    throw std::invalid_argument("VistaIsmParams: service <= 0");
  if (!(horizon_ms > 0))
    throw std::invalid_argument("VistaIsmParams: horizon <= 0");
  if (network_delay_mean_ms < 0 || miso_overhead_per_buffer_ms < 0 ||
      siso_scan_overhead_ms < 0 || tool_service_mean_ms < 0)
    throw std::invalid_argument("VistaIsmParams: negative parameter");
  if (!(straggle_prob >= 0 && straggle_prob <= 1))
    throw std::invalid_argument("VistaIsmParams: straggle_prob out of [0,1]");
  if (!(straggle_shape > 1) || !(straggle_scale_ms > 0) ||
      !(straggle_cap_ms >= straggle_scale_ms))
    throw std::invalid_argument("VistaIsmParams: bad straggle tail");
  if (!(pressure_threshold > 0))
    throw std::invalid_argument("VistaIsmParams: pressure_threshold <= 0");
}

namespace {

struct Arrival {
  std::uint32_t process;
  std::uint64_t seq;
  double t_arrival;
};

struct Model {
  const VistaIsmParams& p;
  sim::Engine eng;
  // Separate streams so the arrival process (generation times, network
  // delays, straggles) is identical across ISM configurations sharing a
  // seed — true common random numbers for the SISO/MISO comparison.  The
  // service stream differs only in consumption order, which is aligned to
  // the processed-record sequence.
  stats::Rng arrival_rng;
  stats::Rng service_rng;

  // Hold-back maps and the latency samples grow with the record stream, so
  // they draw from the replication arena: node and growth allocations reuse
  // the chunks earlier replications faulted in (DESIGN.md §15).
  using HeldAlloc = sim::ArenaAllocator<std::pair<const std::uint64_t, Arrival>>;
  using HeldMap =
      std::map<std::uint64_t, Arrival, std::less<std::uint64_t>, HeldAlloc>;

  std::vector<std::uint64_t> next_release;
  std::vector<HeldMap, sim::ArenaAllocator<HeldMap>> held;
  std::size_t held_count = 0;
  std::deque<Arrival> proc_queue;
  bool proc_busy = false;
  stats::TimeWeighted input_len;
  sim::UtilizationTracker proc_util;

  /// Lineage key of each record waiting in the output buffer, FIFO.
  std::deque<obs::LineageKey> out_queue;
  bool tool_busy = false;
  stats::TimeWeighted out_len;

  std::vector<double, sim::ArenaAllocator<double>> latencies;
  std::uint64_t arrivals = 0;
  std::uint64_t held_back = 0;
  std::uint64_t released = 0;
  obs::PipelineObserver* obs = nullptr;

  Model(const VistaIsmParams& params, stats::Rng r)
      : p(params), arrival_rng(r.split()), service_rng(r.split()),
        next_release(params.processes, 0),
        held(params.processes, HeldMap(HeldAlloc(&sim::rep_arena())),
             sim::ArenaAllocator<HeldMap>(&sim::rep_arena())),
        latencies(sim::ArenaAllocator<double>(&sim::rep_arena())) {}

  static obs::LineageKey key_of(const Arrival& a) {
    return obs::lineage_key(0, a.process, a.seq);
  }

  void note_input_len() {
    input_len.set(eng.now(),
                  static_cast<double>(proc_queue.size() + held_count));
    if (obs)
      obs->timeline.sample_changed(
          "ism.input_len", eng.now(),
          static_cast<double>(proc_queue.size() + held_count));
  }

  void note_out_len() {
    out_len.set(eng.now(), static_cast<double>(out_queue.size()));
    if (obs)
      obs->timeline.sample_changed("ism.output_len", eng.now(),
                                   static_cast<double>(out_queue.size()));
  }

  /// Fixed-interval simulated-time probe; ticks stop at the horizon so the
  /// poller never extends the drain.
  void start_poller() {
    if (!obs || !(obs->timeline_interval > 0)) return;
    const double dt = obs->timeline_interval;
    auto tick = std::make_shared<std::function<void(double)>>();
    // The stored function must not capture its own shared_ptr (a refcount
    // cycle that leaks); scheduled closures keep it alive, the body holds
    // only a weak_ptr.
    std::weak_ptr<std::function<void(double)>> weak = tick;
    *tick = [this, dt, weak](double t) {
      obs->timeline.sample("poll.input_len", t,
                           static_cast<double>(proc_queue.size() + held_count));
      obs->timeline.sample("poll.held", t, static_cast<double>(held_count));
      obs->timeline.sample("poll.output_len", t,
                           static_cast<double>(out_queue.size()));
      const double next = t + dt;
      if (next <= p.horizon_ms)
        if (auto keep = weak.lock())
          eng.schedule_at(next, [keep, next] { (*keep)(next); });
    };
    if (dt <= p.horizon_ms) eng.schedule_at(dt, [tick, dt] { (*tick)(dt); });
  }

  void start_sources() {
    // Per-source sequence counters live in the arena (not shared_ptr
    // control blocks): the generation closure then captures a raw pointer
    // and stays inside EventFn's inline buffer.  The counters outlive every
    // scheduled closure because the engine drains before the model returns.
    for (std::uint32_t i = 0; i < p.processes; ++i) {
      schedule_generation(i, sim::rep_arena().create<std::uint64_t>(0));
    }
  }

  static double exp_draw(stats::Rng& rng, double mean) {
    return mean <= 0 ? 0.0 : -std::log(rng.next_double_open()) * mean;
  }

  static double normal_draw(stats::Rng& rng, double mean, double sigma) {
    // Box-Muller, truncated at 0.
    for (;;) {
      const double u1 = rng.next_double_open();
      const double u2 = rng.next_double();
      const double z = std::sqrt(-2.0 * std::log(u1)) *
                       std::cos(2.0 * 3.14159265358979323846 * u2);
      const double x = mean + sigma * z;
      if (x >= 0) return x;
    }
  }

  void schedule_generation(std::uint32_t proc, std::uint64_t* seq) {
    const double gap = exp_draw(arrival_rng, p.mean_interarrival_ms);
    eng.schedule_after(gap, [this, proc, seq] {
      if (eng.now() > p.horizon_ms) return;  // sources stop at the horizon
      const std::uint64_t s = (*seq)++;
      if (obs) {
        // Forwarding LIS: the record leaves the application the instant it
        // is generated, so capture/enqueue/forward coincide.
        const obs::LineageKey key = obs::lineage_key(0, proc, s);
        obs->lineage.offer(key, eng.now());
        obs->lineage.stamp(key, obs::PipelineStage::kLisEnqueue, eng.now());
        obs->lineage.stamp(key, obs::PipelineStage::kLisForward, eng.now());
      }
      double delay = exp_draw(arrival_rng, p.network_delay_mean_ms);
      if (p.straggle_prob > 0 && arrival_rng.next_bernoulli(p.straggle_prob)) {
        // Truncated Pareto(shape, scale): scale * U^{-1/shape}, capped.
        delay += std::min(
            p.straggle_cap_ms,
            p.straggle_scale_ms *
                std::pow(arrival_rng.next_double_open(), -1.0 / p.straggle_shape));
      }
      eng.schedule_after(delay, [this, proc, s] {
        on_arrival(Arrival{proc, s, eng.now()});
      });
      schedule_generation(proc, seq);
    });
  }

  void on_arrival(const Arrival& a) {
    ++arrivals;
    if (obs)
      obs->lineage.stamp(key_of(a), obs::PipelineStage::kIsmInput,
                         a.t_arrival);
    proc_queue.push_back(a);
    note_input_len();
    maybe_start_processor();
  }

  void maybe_start_processor() {
    if (proc_busy || proc_queue.empty()) return;
    proc_busy = true;
    proc_util.begin_busy(eng.now(), 0);
    double service = normal_draw(service_rng, p.proc_service_mean_ms,
                                 p.proc_service_sigma_ms);
    // Buffer-maintenance surcharge, scaled by backlog pressure (the memory /
    // virtual-memory effect of §3.3.2).  Both configurations pay it; MISO's
    // per-buffer bookkeeping has the larger coefficient, which is what makes
    // SISO "marginally better at higher arrival rates" (§3.3.3).
    const double backlog = static_cast<double>(proc_queue.size() + held_count);
    const double pressure = std::min(1.0, backlog / p.pressure_threshold);
    const double coeff =
        p.miso ? p.miso_overhead_per_buffer_ms : p.siso_scan_overhead_ms;
    service += coeff * p.processes * pressure;
    eng.schedule_after(service, [this] { finish_processing(); });
  }

  void finish_processing() {
    Arrival a = proc_queue.front();
    proc_queue.pop_front();
    proc_busy = false;
    proc_util.end_busy(eng.now());
    if (a.seq == next_release[a.process]) {
      release(a);
      // Releasing may unblock consecutively held successors.
      auto& h = held[a.process];
      auto it = h.find(next_release[a.process]);
      while (it != h.end()) {
        Arrival next = it->second;
        h.erase(it);
        --held_count;
        release(next);
        it = h.find(next_release[a.process]);
      }
    } else {
      held[a.process].emplace(a.seq, a);
      ++held_count;
      ++held_back;
    }
    note_input_len();
    maybe_start_processor();
  }

  void release(const Arrival& a) {
    // Arrival at the output buffer: this ends the data processing latency.
    latencies.push_back(eng.now() - a.t_arrival);
    ++released;
    next_release[a.process] = a.seq + 1;
    if (obs)
      obs->lineage.stamp(key_of(a), obs::PipelineStage::kIsmProcessed,
                         eng.now());
    out_queue.push_back(key_of(a));
    note_out_len();
    maybe_start_tool();
  }

  void maybe_start_tool() {
    if (tool_busy || out_queue.empty()) return;
    tool_busy = true;
    const double service = exp_draw(service_rng, p.tool_service_mean_ms);
    eng.schedule_after(service, [this] {
      const obs::LineageKey key = out_queue.front();
      out_queue.pop_front();
      note_out_len();
      if (obs) obs->lineage.complete(key, eng.now());
      tool_busy = false;
      maybe_start_tool();
    });
  }
};

}  // namespace

VistaIsmMetrics run_vista_ism(const VistaIsmParams& params, stats::Rng rng,
                              obs::PipelineObserver* obs) {
  params.validate();
  // Frame-structured arena use: the model's counters, hold-back maps, and
  // latency samples are reclaimed for reuse when this call returns, so
  // direct callers in a loop (sweeps, factorials) do not grow the arena.
  const sim::MonotonicArena::Frame arena_frame(sim::rep_arena());
  Model m(params, rng);
  m.obs = obs;
  m.start_sources();
  m.start_poller();
  m.eng.run();

  VistaIsmMetrics out;
  out.records = m.arrivals;
  out.released = m.released;
  out.hold_back_ratio =
      m.arrivals ? static_cast<double>(m.held_back) / m.arrivals : 0.0;
  if (!m.latencies.empty()) {
    stats::Summary s;
    for (double x : m.latencies) s.add(x);
    out.mean_processing_latency_ms = s.mean();
    auto v = m.latencies;
    const std::size_t k = static_cast<std::size_t>(0.95 * (v.size() - 1));
    std::nth_element(v.begin(), v.begin() + k, v.end());
    out.p95_processing_latency_ms = v[k];
  }
  out.mean_input_buffer_length = m.input_len.time_average_until(m.eng.now());
  out.max_input_buffer_length = m.input_len.max();
  out.mean_output_queue_length = m.out_len.time_average_until(m.eng.now());
  m.proc_util.flush(m.eng.now());
  out.processor_utilization = m.proc_util.utilization();
  return out;
}

std::vector<VistaSweepPoint> sweep_interarrival(
    const VistaIsmParams& base, const std::vector<double>& interarrival_ms,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts) {
  std::vector<VistaSweepPoint> out;
  out.reserve(interarrival_ms.size());
  for (double ia : interarrival_ms) {
    VistaSweepPoint pt;
    pt.mean_interarrival_ms = ia;
    for (int cfg = 0; cfg < 2; ++cfg) {
      VistaIsmParams p = base;
      p.mean_interarrival_ms = ia;
      p.miso = cfg == 1;
      // Common random numbers: the scenario tag ignores the configuration,
      // so SISO and MISO replications see identical arrival streams.
      auto rr = sim::replicate(
          replications, seed, static_cast<std::uint64_t>(ia * 1024),
          [&p](stats::Rng& rng) -> sim::Responses {
            const auto m = run_vista_ism(p, rng);
            return {{"latency", m.mean_processing_latency_ms},
                    {"buffer", m.mean_input_buffer_length}};
          },
          opts);
      if (cfg == 0) {
        pt.latency_siso = rr.ci("latency", 0.90);
        pt.buffer_siso = rr.ci("buffer", 0.90);
      } else {
        pt.latency_miso = rr.ci("latency", 0.90);
        pt.buffer_miso = rr.ci("buffer", 0.90);
      }
    }
    out.push_back(pt);
  }
  return out;
}

stats::FactorialResult vista_factorial(const VistaIsmParams& base,
                                       double interarrival_lo_ms,
                                       double interarrival_hi_ms,
                                       unsigned replications,
                                       const std::string& response,
                                       std::uint64_t seed) {
  if (response != "latency" && response != "buffer_length")
    throw std::invalid_argument("vista_factorial: unknown response " +
                                response);
  stats::Design2kr design({"config", "interarrival"}, replications);
  return design.run([&](const std::vector<int>& levels, unsigned rep) {
    VistaIsmParams p = base;
    p.miso = levels[0] > 0;  // -1: SISO, +1: MISO
    p.mean_interarrival_ms =
        levels[1] < 0 ? interarrival_lo_ms : interarrival_hi_ms;
    stats::Rng rng(stats::Rng::hash_seed(
        seed, static_cast<std::uint64_t>(levels[1] + 2),
        static_cast<std::uint64_t>(rep)));
    const auto m = run_vista_ism(p, rng);
    return response == "latency" ? m.mean_processing_latency_ms
                                 : m.mean_input_buffer_length;
  });
}

}  // namespace prism::vista
