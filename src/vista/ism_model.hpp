// Queueing model of the Vista ISM (§3.3.2, Fig. 10, Fig. 11, Tables 6-7).
//
// Model: P application processes emit event records (Poisson, per-process
// mean inter-arrival time is the experimental factor).  Records reach the
// ISM after an exponential network delay, so some arrive out of causal
// (per-process sequence) order.  The ISM's data processor — a single server
// with normally distributed service time — handles each arrival; in-order
// records are logically timestamped and moved to the output buffer, while
// out-of-order records wait in the input buffer(s) until their predecessors
// have been released.  A tool drains the output buffer FCFS with exponential
// service (the G/M/1 output side of Fig. 10).
//
// SISO vs MISO: the configurations differ in input-buffer organization.
// "Intuitively, maintenance of multiple buffers should incur more overhead,
// especially in accessing memory (including virtual memory), under high
// arrival rate conditions" (§3.3.2) — modeled as a per-record processing
// surcharge proportional to the number of buffers (MISO) versus a small
// scan surcharge proportional to current hold-back occupancy (SISO).
//
// Metrics (Table 7):
//   * data processing latency — arrival at the ISM to arrival at the output
//     buffer (includes processor queueing, service, and hold-back time);
//   * average input buffer length — time-averaged occupancy of the input
//     side (processor queue + hold-back buffers); the hold-back ratio
//     (Falcon's metric) is reported alongside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/pipeline.hpp"
#include "sim/replication.hpp"
#include "stats/confidence.hpp"
#include "stats/factorial.hpp"
#include "stats/rng.hpp"

namespace prism::vista {

struct VistaIsmParams {
  bool miso = false;                   ///< MISO when true, else SISO
  unsigned processes = 8;              ///< P
  double mean_interarrival_ms = 30.0;  ///< per-process (the swept factor)
  double network_delay_mean_ms = 1.0;  ///< common LIS->ISM forwarding delay
  /// A record occasionally straggles (the forwarding call is descheduled or
  /// paged on a time-shared workstation), picking up a heavy-tailed
  /// truncated-Pareto(shape, scale, cap) extra delay — the out-of-order
  /// source.  The heavy tail matters: for shape < 3 the run-to-run variance
  /// contributed by hold-back grows with the inter-arrival gap (~g^(3-shape)),
  /// so the measured latency is *noisier at longer inter-arrival times* —
  /// precisely the published Fig. 11 behaviour — while the truncation keeps
  /// all moments finite (stable estimates).
  double straggle_prob = 0.15;
  double straggle_shape = 1.3;     ///< Pareto tail index (1 < shape < 3)
  double straggle_scale_ms = 5.0;  ///< Pareto minimum delay x_m
  double straggle_cap_ms = 2000.0; ///< truncation (a worst-case page stall)
  double proc_service_mean_ms = 1.0;   ///< data processor, normal
  double proc_service_sigma_ms = 0.25;
  /// MISO per-record surcharge: maintaining P buffers costs more as the
  /// resident set grows ("accessing memory (including virtual memory),
  /// under high arrival rate conditions") — scaled by backlog pressure.
  double miso_overhead_per_buffer_ms = 0.02;  ///< * P * pressure, per record
  double pressure_threshold = 8.0;            ///< backlog for full pressure
  double siso_scan_overhead_ms = 0.004;       ///< SISO's (cheaper) coefficient
  double tool_service_mean_ms = 0.8;   ///< output-side consumer, exponential
  double horizon_ms = 60'000;

  void validate() const;
};

struct VistaIsmMetrics {
  double mean_processing_latency_ms = 0;
  double p95_processing_latency_ms = 0;
  double mean_input_buffer_length = 0;
  double max_input_buffer_length = 0;
  double hold_back_ratio = 0;
  double mean_output_queue_length = 0;
  double processor_utilization = 0;
  std::uint64_t records = 0;
  std::uint64_t released = 0;
};

/// One replication of the model.  When `obs` is non-null every record is
/// lineage-traced end to end on the simulated clock (generation ->
/// forwarding -> ISM arrival -> release to the output buffer -> tool
/// consumption), and queue occupancies stream onto the timeline (on-change
/// plus fixed-interval "poll.*" probes when obs->timeline_interval > 0).
VistaIsmMetrics run_vista_ism(const VistaIsmParams& params, stats::Rng rng,
                              obs::PipelineObserver* obs = nullptr);

struct VistaSweepPoint {
  double mean_interarrival_ms = 0;
  stats::ConfidenceInterval latency_siso, latency_miso;
  stats::ConfidenceInterval buffer_siso, buffer_miso;
};

/// Fig. 11 sweep: both configurations at each inter-arrival time, with 90%
/// CIs over `replications` runs (common random numbers across configs).
/// `opts` controls replication execution (parallel by default; results are
/// bit-identical for any thread count).
std::vector<VistaSweepPoint> sweep_interarrival(
    const VistaIsmParams& base, const std::vector<double>& interarrival_ms,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts = {});

/// The paper's 2^k r factorial design over {configuration, inter-arrival},
/// for response "latency" or "buffer_length".  The paper's finding: "the
/// inter-arrival rate is the dominant factor" for both metrics.
stats::FactorialResult vista_factorial(const VistaIsmParams& base,
                                       double interarrival_lo_ms,
                                       double interarrival_hi_ms,
                                       unsigned replications,
                                       const std::string& response,
                                       std::uint64_t seed);

}  // namespace prism::vista
