#include "vista/testbed.hpp"

#include <memory>

#include "core/environment.hpp"
#include "trace/causal.hpp"
#include "workload/thread_apps.hpp"

namespace prism::vista {

namespace {

/// Tool that retains everything for the post-run causal-order check.
class CollectorTool final : public core::Tool {
 public:
  std::string_view name() const override { return "collector"; }
  void consume(const trace::EventRecord& r) override {
    std::lock_guard lk(mu_);
    records_.push_back(r);
  }
  std::vector<trace::EventRecord> take() {
    std::lock_guard lk(mu_);
    return std::move(records_);
  }

 private:
  std::mutex mu_;
  std::vector<trace::EventRecord> records_;
};

}  // namespace

TestbedReport run_prism_testbed(const TestbedParams& params) {
  core::EnvironmentConfig cfg;
  cfg.nodes = params.nodes;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.link_capacity = params.link_capacity;
  cfg.ism.input = params.input;
  cfg.ism.causal_ordering = params.causal_ordering;

  core::IntegratedEnvironment env(cfg);
  auto collector = std::make_shared<CollectorTool>();
  env.attach_tool(collector);
  env.start();

  const auto app = workload::run_ring_threads(env, params.rounds,
                                              params.work_iters_per_hop);
  env.stop();

  TestbedReport rep;
  rep.events_recorded = app.events_recorded;
  rep.wall_ns = app.wall_ns;
  const auto ism = env.ism().stats();
  rep.records_dispatched = ism.records_dispatched;
  rep.mean_processing_latency_us = ism.processing_latency_ns.mean() / 1e3;
  rep.mean_dispatch_latency_us = ism.dispatch_latency_ns.mean() / 1e3;
  rep.hold_back_ratio = ism.hold_back_ratio;
  const auto records = collector->take();
  rep.causally_ordered_output =
      trace::first_causal_violation(records) < 0;
  return rep;
}

}  // namespace prism::vista
