// P'RISM — the live, configurable Vista IS testbed (§3.3).
//
// "Vista includes a testbed IS, which is being used for studying IS
// management policies that control data collection, forwarding, processing,
// and dispatching.  The IS is configurable, so different management policies
// can be instituted dynamically.  The overall goal of the Vista IS testbed
// (called P'RISM, PaRallel Instrumentation System Management ...) is to
// enable the user to rapidly prototype IS designs and select a policy that
// meets functional and performance requirements."
//
// PrismTestbed assembles a live environment with Vista-style event
// forwarding and a chosen ISM configuration, drives a synthetic
// message-passing workload across real threads, and reports the measured
// ISM metrics — so a SISO-vs-MISO (or ordering on/off) decision can be made
// from live measurements the same way §3.3.2 made it from the model.
#pragma once

#include <cstdint>

#include "core/ism.hpp"

namespace prism::vista {

struct TestbedParams {
  core::InputConfig input = core::InputConfig::kSiso;
  bool causal_ordering = true;
  std::uint32_t nodes = 4;
  /// Ring rounds the workload runs (each hop = recv + compute + send).
  unsigned rounds = 50;
  std::uint64_t work_iters_per_hop = 2'000;
  std::size_t link_capacity = 1024;
};

struct TestbedReport {
  std::uint64_t events_recorded = 0;
  std::uint64_t records_dispatched = 0;
  double mean_processing_latency_us = 0;
  double mean_dispatch_latency_us = 0;
  double hold_back_ratio = 0;
  std::uint64_t wall_ns = 0;
  bool causally_ordered_output = false;
};

/// Runs one live configuration end-to-end and reports its measurements.
TestbedReport run_prism_testbed(const TestbedParams& params);

}  // namespace prism::vista
