// The integrated parallel tool environment (§2.3, Fig. 3) — the top-level
// assembly that owns the whole IS and its tools.
//
// "An integrated parallel tool environment supports the use of multiple,
// possibly heterogeneous, tools that cooperate for carrying out one or more
// analyses of the same parallel program ... Clearly, the IS plays a central
// role in integration."
//
// IntegratedEnvironment wires a per-node LIS array, a TransferProtocol, an
// Ism, and any number of tools, with a single start/stop lifecycle.  The LIS
// style, ISM input configuration, buffer capacities, flush policy and
// sampling period are all configuration — this is the "configurable testbed"
// role the paper assigns to Vista's P'RISM (§3.3), generalized to all three
// LIS styles.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/classification.hpp"
#include "core/ism.hpp"
#include "core/lis.hpp"
#include "core/probe_registry.hpp"
#include "core/transfer_protocol.hpp"
#include "obs/obs.hpp"

#if PRISM_OBS_ENABLED
namespace prism::obs::live {
struct HealthSnapshot;
class TelemetrySampler;
class TelemetryServer;
}  // namespace prism::obs::live
#endif

namespace prism::core {

/// Which LIS implementation each node runs.
enum class LisStyle : std::uint8_t {
  kBuffered,    ///< PICL-style library buffers + flush policy
  kForwarding,  ///< Vista-style per-event forwarding
  kDaemon,      ///< Paradyn-style sampling daemon
};

std::string_view to_string(LisStyle s);

/// Flush policies selectable by name for buffered LISes.
enum class FlushPolicyKind : std::uint8_t { kFof, kFaof, kThreshold, kAdaptive };

/// Live telemetry plane (DESIGN.md §14): off, or a scrape endpoint over an
/// AF_UNIX socket / TCP loopback.  kOff is the default and leaves behavior
/// bit-identical to a build without the plane.
enum class TelemetryMode : std::uint8_t { kOff, kUnix, kTcp };

std::string_view to_string(TelemetryMode m);

struct TelemetryOptions {
  TelemetryMode mode = TelemetryMode::kOff;
  /// Sampler period.  Must be > 0 when the plane is on.
  std::uint64_t period_ms = 100;
  /// kUnix: socket path (empty = "/tmp/prism.telemetry.<pid>.sock").
  /// kTcp: loopback port as text (empty or "0" = ephemeral; read the real
  /// one back from telemetry_address()).
  std::string endpoint;
};

/// How LIS nodes are assigned to aggregator shards (DESIGN.md §16).
enum class ShardAssign : std::uint8_t {
  kHash,    ///< consistent hashing over a virtual-node ring (default)
  kModulo,  ///< node % shards (simple, but every resize remaps everything)
};

std::string_view to_string(ShardAssign a);

/// Two-level ISM federation (DESIGN.md §16): per-cluster aggregator ISMs
/// consume their cluster's LIS streams, causally pre-reduce them, and
/// forward re-batched record lineages over the root transport to a root ISM
/// that performs the global gap-tolerant merge.  shards == 0 leaves the IS
/// flat (the classic single-ISM IntegratedEnvironment topology).
struct FederationOptions {
  /// Number of aggregator shards.  0 = flat (no federation); >= 1 builds
  /// the two-level topology (1 shard is a valid degenerate federation — the
  /// scaling curve's first point).
  std::uint32_t shards = 0;
  /// Ring replicas per shard for ShardAssign::kHash — more virtual nodes
  /// smooth the key distribution.
  std::uint32_t virtual_nodes = 64;
  ShardAssign assign = ShardAssign::kHash;
  /// Transport of the root level (aggregator -> root ISM).  Unset = same
  /// flavor as the cluster level (EnvironmentConfig::tp_flavor).  The two
  /// levels are independent: e.g. shm inside a cluster, sockets to the root.
  std::optional<TpFlavor> root_tp;
  /// Pre-reduction batch size: an aggregator ships its causally-ordered
  /// stream to the root in batches of exactly this many records (the drain
  /// remainder excepted).  Fixed-size uplink batches keep chaos ledgers
  /// schedule-independent: the k-th uplink send of a shard always carries
  /// the same record *count*, whatever the arrival interleaving was.
  std::size_t agg_batch_records = 256;

  bool enabled() const { return shards != 0; }
};

struct EnvironmentConfig {
  std::uint32_t nodes = 4;
  /// Application processes (threads) per node — used by the daemon LIS.
  std::uint32_t processes_per_node = 1;
  LisStyle lis_style = LisStyle::kBuffered;
  FlushPolicyKind flush_policy = FlushPolicyKind::kFof;
  std::size_t local_buffer_capacity = 1024;
  double flush_threshold_fraction = 0.8;          ///< for kThreshold
  std::uint64_t adaptive_target_flush_ns = 10'000'000;  ///< for kAdaptive
  std::uint64_t sampling_period_ns = 1'000'000;   ///< daemon LIS
  std::size_t pipe_capacity = 256;                ///< daemon LIS pipes
  bool daemon_blocks_app_on_full_pipe = true;
  TpFlavor tp_flavor = TpFlavor::kPipe;
  std::size_t link_capacity = 1024;
  /// Real-socket data plane (used only when tp_flavor == kSocket): address
  /// family, untrusted-header record bound, and write coalescing budget.
  SocketOptions socket;
  /// Shared-memory data plane (used only when tp_flavor == kShm): per-link
  /// ring capacity (power of two) and untrusted-header record bound.
  ShmOptions shm;
  IsmConfig ism;
  /// Live telemetry: sampler + scrape endpoint (DESIGN.md §14).  Requires a
  /// PRISM_OBS build when mode != kOff; start() throws otherwise rather than
  /// silently serving nothing.
  TelemetryOptions telemetry;
  /// Two-level ISM federation (DESIGN.md §16).  Ignored by
  /// IntegratedEnvironment (the flat topology); FederatedEnvironment
  /// requires federation.shards >= 1.
  FederationOptions federation;
};

/// Builds the FlushPolicy the configuration names (shared by the flat and
/// federated environments).
std::unique_ptr<class FlushPolicy> make_flush_policy(
    const EnvironmentConfig& cfg);

/// How far an environment degraded during a run — the partial-result report
/// the lifecycle hands back after a chaotic run.  All counters are zero on a
/// fault-free run.
struct DegradationReport {
  std::uint32_t lises_dead = 0;        ///< LIS components that died
  std::uint64_t tools_failed = 0;      ///< tools isolated after crashing
  std::uint64_t records_lost_send = 0; ///< destroyed by TP send failures
  std::uint64_t records_lost_dead = 0; ///< destroyed with dead components
  /// Destroyed on the real data plane — socket wire or shm ring (frame
  /// corruption, mid-frame aborts, undelivered in-transit frames).  Zero
  /// for in-process flavors.
  std::uint64_t records_lost_wire = 0;
  std::uint64_t control_dropped = 0;   ///< control messages lost, all kinds
  /// Held-back records force-released because their source died.
  std::uint64_t holdback_expired = 0;
  /// Federation levels only (DESIGN.md §16); all zero on a flat topology.
  /// Aggregator shards that died (crash injection or organic failure).
  std::uint32_t shards_dead = 0;
  /// Forwarded by an aggregator but destroyed on the root-bound uplink —
  /// the federation-boundary loss site, attributed exactly once (at the
  /// shard, never also in the root's ledger).
  std::uint64_t records_lost_uplink = 0;
  /// Destroyed with a dead aggregator shard (staged, held, or drained after
  /// its crash).
  std::uint64_t records_lost_agg = 0;

  /// True when anything at all degraded.
  bool degraded() const {
    return lises_dead || tools_failed || records_lost_send ||
           records_lost_dead || records_lost_wire || control_dropped ||
           holdback_expired || shards_dead || records_lost_uplink ||
           records_lost_agg;
  }
  std::string to_string() const;
};

class IntegratedEnvironment {
 public:
  explicit IntegratedEnvironment(EnvironmentConfig config);
  ~IntegratedEnvironment();
  IntegratedEnvironment(const IntegratedEnvironment&) = delete;
  IntegratedEnvironment& operator=(const IntegratedEnvironment&) = delete;

  /// Must be called before start().
  void attach_tool(std::shared_ptr<Tool> tool);

  void start();
  /// Stops LISes (flushing), then the ISM (draining), then finishes tools.
  void stop();

  Lis& lis(std::uint32_t node);
  Ism& ism() { return *ism_; }
  TransferProtocol& tp() { return *tp_; }
  /// Dynamic-instrumentation registry: register application probes here and
  /// they become controllable via kEnable/DisableInstrumentation messages
  /// (handled by daemon LISes).
  ProbeRegistry& probes() { return probe_registry_; }
  const EnvironmentConfig& config() const { return config_; }

  /// Convenience hot path: record an event through node `node`'s LIS.
  void record(std::uint32_t node, const trace::EventRecord& r) {
    lis(node).record(r);
  }
  /// Routes by the record's own node field.
  void record(const trace::EventRecord& r) { lis(r.node).record(r); }

  /// Gang flush (FAOF trigger or shutdown path).
  void flush_all();

  /// Aggregated LIS statistics across nodes.
  LisStats total_lis_stats() const;

  /// Attaches one model-time observability sink to every LIS and the ISM
  /// (may be null to detach).  Call before start(); the LISes are the
  /// pipeline's capture points.
  void set_observer(obs::PipelineObserver* o);

  /// Attaches one fault plane to every LIS, the ISM and the TP control path
  /// (may be null to detach; null is the default and leaves behavior
  /// bit-identical).  Call before start().
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

  /// Partial-result accounting after (or during) a chaotic run: which
  /// components died and where records went.  stop() drains what remains
  /// reachable first, so completed work is delivered even when parts of the
  /// IS died mid-run.
  DegradationReport degradation() const;

  /// How this environment classifies along the §2.4 dimensions.
  IsClassification classification() const;

#if PRISM_OBS_ENABLED
  /// Fills the pipeline-specific snapshot fields: stage conservation rows
  /// ("lis", "wire" when a real data plane is up, "ism", "pipeline") and the
  /// DegradationReport mirror.  Counters are read in completed → losses →
  /// admitted order so the per-stage identity admitted == completed + lost +
  /// in_flight holds in every sample (see StageHealth).  Safe to call from
  /// any thread while the pipeline runs; the sampler's Collector is exactly
  /// this method.
  void collect_health(obs::live::HealthSnapshot& snap) const;

  /// Non-null between start() and destruction when telemetry is on.
  obs::live::TelemetrySampler* telemetry_sampler() { return sampler_.get(); }
  obs::live::TelemetryServer* telemetry_server() { return server_.get(); }
  /// The scrape address (unix path or "127.0.0.1:<port>"); empty when off.
  std::string telemetry_address() const;
#endif

 private:
  EnvironmentConfig config_;
  std::unique_ptr<TransferProtocol> tp_;
  std::unique_ptr<Ism> ism_;
  FlushCoordinator coordinator_;
  ProbeRegistry probe_registry_;
  std::vector<std::unique_ptr<Lis>> lises_;
  bool started_ = false;
  bool stopped_ = false;
#if PRISM_OBS_ENABLED
  // Declared last: the sampler/server reference the pipeline members above
  // through collect_health(), so they must be destroyed first.
  std::unique_ptr<obs::live::TelemetrySampler> sampler_;
  std::unique_ptr<obs::live::TelemetryServer> server_;
#endif
};

}  // namespace prism::core
