#include "core/throttle.hpp"

#include "obs/obs.hpp"

namespace prism::core {

std::string_view to_string(TraceLevel lvl) {
  switch (lvl) {
    case TraceLevel::kFull: return "full";
    case TraceLevel::kSampled: return "sampled";
    case TraceLevel::kCounting: return "counting";
    case TraceLevel::kOff: return "off";
  }
  return "unknown";
}

TracingThrottle::TracingThrottle(ThrottleConfig config, EventSink downstream)
    : cfg_(config), down_(std::move(downstream)) {
  if (!down_) throw std::invalid_argument("TracingThrottle: null sink");
  if (!(cfg_.escalate_rate > cfg_.deescalate_rate))
    throw std::invalid_argument(
        "TracingThrottle: escalate_rate must exceed deescalate_rate");
  if (!(cfg_.smoothing > 0 && cfg_.smoothing <= 1))
    throw std::invalid_argument("TracingThrottle: bad smoothing");
  if (cfg_.sample_stride == 0)
    throw std::invalid_argument("TracingThrottle: zero stride");
  if (cfg_.counting_window_ns == 0)
    throw std::invalid_argument("TracingThrottle: zero window");
}

double TracingThrottle::estimated_rate_per_sec() const {
  // mean_gap_ns_ is only written under the lock; a stale read is fine for
  // reporting.
  return mean_gap_ns_ > 0 ? 1e9 / mean_gap_ns_ : 0.0;
}

void TracingThrottle::pin(TraceLevel lvl) {
  pinned_.store(true);
  level_.store(lvl);
}

void TracingThrottle::offer(const trace::EventRecord& r) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  PRISM_OBS_COUNT("core.throttle.offered");
  std::lock_guard lk(mu_);
  const std::uint64_t now = r.timestamp;
  if (last_event_ns_ != 0 && now > last_event_ns_) {
    const auto gap = static_cast<double>(now - last_event_ns_);
    mean_gap_ns_ = mean_gap_ns_ == 0
                       ? gap
                       : cfg_.smoothing * gap +
                             (1 - cfg_.smoothing) * mean_gap_ns_;
  }
  last_event_ns_ = now;
  if (!pinned_.load(std::memory_order_relaxed)) maybe_transition(now);

  switch (level_.load(std::memory_order_relaxed)) {
    case TraceLevel::kFull:
      forward(r);
      break;
    case TraceLevel::kSampled:
      if (stride_cursor_++ % cfg_.sample_stride == 0) {
        forward(r);
      } else {
        PRISM_OBS_COUNT("core.throttle.suppressed");
      }
      break;
    case TraceLevel::kCounting:
      // The raw record is absorbed; an aggregate representing the window is
      // forwarded separately by flush_window().
      PRISM_OBS_COUNT("core.throttle.suppressed");
      if (window_start_ns_ == 0) window_start_ns_ = now;
      ++window_count_;
      if (now - window_start_ns_ >= cfg_.counting_window_ns)
        flush_window(now, r);
      break;
    case TraceLevel::kOff:
      PRISM_OBS_COUNT("core.throttle.suppressed");
      break;
  }
}

void TracingThrottle::forward(const trace::EventRecord& r) {
  trace::EventRecord out = r;
  if (cfg_.renumber_seq) out.seq = out_seq_++;
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  PRISM_OBS_COUNT("core.throttle.forwarded");
  down_(out);
}

void TracingThrottle::flush_window(std::uint64_t now,
                                   const trace::EventRecord& like) {
  trace::EventRecord agg;
  agg.timestamp = now;
  agg.node = like.node;
  agg.process = like.process;
  agg.kind = trace::EventKind::kSample;
  agg.tag = cfg_.counting_tag;
  agg.payload = window_count_;
  agg.seq = like.seq;
  window_count_ = 0;
  window_start_ns_ = now;
  forward(agg);
}

void TracingThrottle::maybe_transition(std::uint64_t now) {
  if (mean_gap_ns_ <= 0) return;
  if (now - last_transition_ns_ < cfg_.dwell_ns) return;
  const double rate = 1e9 / mean_gap_ns_;
  auto lvl = level_.load(std::memory_order_relaxed);
  if (rate > cfg_.escalate_rate && lvl != TraceLevel::kOff) {
    level_.store(static_cast<TraceLevel>(static_cast<int>(lvl) + 1));
    last_transition_ns_ = now;
    level_changes_.fetch_add(1, std::memory_order_relaxed);
    PRISM_OBS_COUNT("core.throttle.level_changes");
    PRISM_OBS_GAUGE_SET("core.throttle.level", static_cast<int>(lvl) + 1);
    PRISM_OBS_INSTANT("throttle.escalate", "core");
    // Reset the estimate so one burst does not cascade straight to kOff.
    mean_gap_ns_ = 0;
  } else if (rate < cfg_.deescalate_rate && lvl != TraceLevel::kFull) {
    level_.store(static_cast<TraceLevel>(static_cast<int>(lvl) - 1));
    last_transition_ns_ = now;
    level_changes_.fetch_add(1, std::memory_order_relaxed);
    PRISM_OBS_COUNT("core.throttle.level_changes");
    PRISM_OBS_GAUGE_SET("core.throttle.level", static_cast<int>(lvl) - 1);
    PRISM_OBS_INSTANT("throttle.deescalate", "core");
    mean_gap_ns_ = 0;
  }
}

}  // namespace prism::core
