#include "core/throttle.hpp"

#include "obs/obs.hpp"

namespace prism::core {

namespace {

obs::LineageKey obs_key(const trace::EventRecord& r) {
  return obs::lineage_key(r.node, r.process, r.seq);
}

}  // namespace

std::string_view to_string(TraceLevel lvl) {
  switch (lvl) {
    case TraceLevel::kFull: return "full";
    case TraceLevel::kSampled: return "sampled";
    case TraceLevel::kCounting: return "counting";
    case TraceLevel::kOff: return "off";
  }
  return "unknown";
}

TracingThrottle::TracingThrottle(ThrottleConfig config, EventSink downstream)
    : cfg_(config), down_(std::move(downstream)) {
  if (!down_) throw std::invalid_argument("TracingThrottle: null sink");
  if (!(cfg_.escalate_rate > cfg_.deescalate_rate))
    throw std::invalid_argument(
        "TracingThrottle: escalate_rate must exceed deescalate_rate");
  if (!(cfg_.smoothing > 0 && cfg_.smoothing <= 1))
    throw std::invalid_argument("TracingThrottle: bad smoothing");
  if (cfg_.sample_stride == 0)
    throw std::invalid_argument("TracingThrottle: zero stride");
  if (cfg_.counting_window_ns == 0)
    throw std::invalid_argument("TracingThrottle: zero window");
}

double TracingThrottle::estimated_rate_per_sec() const {
  // mean_gap_ns_ is only written under the lock; a stale read is fine for
  // reporting.
  return mean_gap_ns_ > 0 ? 1e9 / mean_gap_ns_ : 0.0;
}

void TracingThrottle::pin(TraceLevel lvl) {
  pinned_.store(true);
  level_.store(lvl);
}

void TracingThrottle::offer(const trace::EventRecord& r) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  PRISM_OBS_COUNT("core.throttle.offered");
  std::lock_guard lk(mu_);
  const std::uint64_t now = r.timestamp;
  if (last_event_ns_ != 0 && now > last_event_ns_) {
    const auto gap = static_cast<double>(now - last_event_ns_);
    mean_gap_ns_ = mean_gap_ns_ == 0
                       ? gap
                       : cfg_.smoothing * gap +
                             (1 - cfg_.smoothing) * mean_gap_ns_;
  }
  last_event_ns_ = now;
  if (!pinned_.load(std::memory_order_relaxed)) maybe_transition(now);

  // Lineage capture point: every record the application would have emitted
  // enters the tracer here, so suppression is attributable loss rather than
  // a record that never existed.
  if (observer_)
    observer_->lineage.offer(obs_key(r), static_cast<double>(r.timestamp));

  switch (level_.load(std::memory_order_relaxed)) {
    case TraceLevel::kFull:
      forward(r);
      break;
    case TraceLevel::kSampled:
      if (stride_cursor_++ % cfg_.sample_stride == 0) {
        forward(r);
      } else {
        PRISM_OBS_COUNT("core.throttle.suppressed");
        if (observer_)
          observer_->lineage.lose(obs_key(r), obs::LossSite::kThrottle,
                                  static_cast<double>(now));
      }
      break;
    case TraceLevel::kCounting:
      // The raw record is absorbed; an aggregate representing the window is
      // forwarded separately by flush_window().  Lose the absorbed record
      // before the flush so the aggregate's (possibly colliding) key gets a
      // fresh lineage entry.
      PRISM_OBS_COUNT("core.throttle.suppressed");
      if (observer_)
        observer_->lineage.lose(obs_key(r), obs::LossSite::kThrottle,
                                static_cast<double>(now));
      if (window_start_ns_ == 0) window_start_ns_ = now;
      ++window_count_;
      if (now - window_start_ns_ >= cfg_.counting_window_ns)
        flush_window(now, r);
      break;
    case TraceLevel::kOff:
      PRISM_OBS_COUNT("core.throttle.suppressed");
      if (observer_)
        observer_->lineage.lose(obs_key(r), obs::LossSite::kThrottle,
                                static_cast<double>(now));
      break;
  }
}

void TracingThrottle::forward(const trace::EventRecord& r, bool fresh) {
  trace::EventRecord out = r;
  if (cfg_.renumber_seq) out.seq = out_seq_++;
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  PRISM_OBS_COUNT("core.throttle.forwarded");
  if (observer_) {
    if (fresh) {
      // Window aggregates are born inside the throttle; they were never
      // offered upstream.
      observer_->lineage.offer(obs_key(out),
                               static_cast<double>(out.timestamp));
    } else if (out.seq != r.seq) {
      observer_->lineage.remap(obs_key(r), obs_key(out));
    }
  }
  down_(out);
}

void TracingThrottle::flush_window(std::uint64_t now,
                                   const trace::EventRecord& like) {
  trace::EventRecord agg;
  agg.timestamp = now;
  agg.node = like.node;
  agg.process = like.process;
  agg.kind = trace::EventKind::kSample;
  agg.tag = cfg_.counting_tag;
  agg.payload = window_count_;
  agg.seq = like.seq;
  window_count_ = 0;
  window_start_ns_ = now;
  forward(agg, /*fresh=*/true);
}

void TracingThrottle::maybe_transition(std::uint64_t now) {
  if (mean_gap_ns_ <= 0) return;
  if (now - last_transition_ns_ < cfg_.dwell_ns) return;
  const double rate = 1e9 / mean_gap_ns_;
  auto lvl = level_.load(std::memory_order_relaxed);
  if (rate > cfg_.escalate_rate && lvl != TraceLevel::kOff) {
    level_.store(static_cast<TraceLevel>(static_cast<int>(lvl) + 1));
    last_transition_ns_ = now;
    level_changes_.fetch_add(1, std::memory_order_relaxed);
    PRISM_OBS_COUNT("core.throttle.level_changes");
    PRISM_OBS_GAUGE_SET("core.throttle.level", static_cast<int>(lvl) + 1);
    PRISM_OBS_INSTANT("throttle.escalate", "core");
    if (observer_)
      observer_->timeline.sample_changed("throttle.level",
                                         static_cast<double>(now),
                                         static_cast<double>(
                                             static_cast<int>(lvl) + 1));
    // Reset the estimate so one burst does not cascade straight to kOff.
    mean_gap_ns_ = 0;
  } else if (rate < cfg_.deescalate_rate && lvl != TraceLevel::kFull) {
    level_.store(static_cast<TraceLevel>(static_cast<int>(lvl) - 1));
    last_transition_ns_ = now;
    level_changes_.fetch_add(1, std::memory_order_relaxed);
    PRISM_OBS_COUNT("core.throttle.level_changes");
    PRISM_OBS_GAUGE_SET("core.throttle.level", static_cast<int>(lvl) - 1);
    PRISM_OBS_INSTANT("throttle.deescalate", "core");
    if (observer_)
      observer_->timeline.sample_changed("throttle.level",
                                         static_cast<double>(now),
                                         static_cast<double>(
                                             static_cast<int>(lvl) - 1));
    mean_gap_ns_ = 0;
  }
}

}  // namespace prism::core
