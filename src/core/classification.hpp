// IS classification dimensions (§2.4 and Table 8).
//
// "We classify an IS in terms of (1) off-line versus on-line tool usage ...
// and (2) IS development, management, and evaluation approaches (including
// any cost models used for evaluation)."  These enums are used both for the
// Table 8 survey registry and as configuration descriptors on live IS
// instances (an environment can be asked what class of IS it is running).
#pragma once

#include <cstdint>
#include <string_view>

namespace prism::core {

/// Time constraints imposed by the analysis tools in the environment.
enum class AnalysisSupport : std::uint8_t {
  kOffline,        ///< batch post-mortem analysis (trace file consumers)
  kOnline,         ///< concurrent with execution, steady runtime data flow
  kOnOffline,      ///< both modes supported
};

/// How the IS software comes into being.
enum class SynthesisApproach : std::uint8_t {
  kHardCoded,           ///< fixed module compiled into the environment
  kApplicationSpecific, ///< customizable/generated per application
};

/// Policies scheduling the LIS/ISM activities (§2.4 "IS Management").
enum class ManagementApproach : std::uint8_t {
  kStatic,               ///< fixed policy chosen before the run
  kAdaptive,             ///< policy parameters adjust at runtime
  kApplicationSpecific,  ///< policy supplied by/derived from the application
};

/// How (whether) the IS's own overheads are evaluated.
enum class EvaluationApproach : std::uint8_t {
  kNone,                    ///< no integral evaluation (the ad hoc norm)
  kAdaptiveCostModel,       ///< Paradyn-style continuously updated cost model
  kPerturbationFactors,     ///< Falcon-style factor analysis
  kAccountableInvasiveness, ///< ParAide/SPI-style accounted intrusiveness
  kStructuredModeling,      ///< this paper: model-first evaluation
};

std::string_view to_string(AnalysisSupport v);
std::string_view to_string(SynthesisApproach v);
std::string_view to_string(ManagementApproach v);
std::string_view to_string(EvaluationApproach v);

/// Full classification of one IS along the paper's dimensions.
struct IsClassification {
  AnalysisSupport analysis = AnalysisSupport::kOffline;
  SynthesisApproach synthesis = SynthesisApproach::kHardCoded;
  ManagementApproach management = ManagementApproach::kStatic;
  EvaluationApproach evaluation = EvaluationApproach::kNone;
};

}  // namespace prism::core
