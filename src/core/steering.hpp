// Closed-loop steering (§2.3's "steering" tool class; Fig. 2's control
// arrows from the tools back through the ISM to the application /
// instrumentation): a tool that watches a sampled metric in the ISM's
// output stream and, on sustained threshold crossings, sends control
// messages back down the TP — e.g. stretching the daemon's sampling period
// when the instrumentation itself is overloading a node.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/ism.hpp"
#include "core/tool.hpp"

namespace prism::core {

struct SteeringPolicy {
  /// Metric tag to watch (kSample records).
  std::uint16_t metric_tag = 0;
  /// Crossing this value `consecutive_needed` times fires `high_action`.
  double high_threshold = 1.0;
  /// Falling below this re-arms and fires `low_action` (if set).
  double low_threshold = 0.0;
  unsigned consecutive_needed = 3;
  ControlMessage high_action{ControlKind::kSetSamplingPeriod, 0, 0.0};
  std::optional<ControlMessage> low_action;
};

class SteeringTool final : public Tool {
 public:
  /// `ism` must outlive the tool (both are owned by the environment).
  SteeringTool(Ism& ism, SteeringPolicy policy);

  std::string_view name() const override { return "steering"; }
  void consume(const trace::EventRecord& r) override;

  std::uint64_t high_actions_fired() const { return high_fired_.load(); }
  std::uint64_t low_actions_fired() const { return low_fired_.load(); }
  bool engaged() const { return engaged_.load(); }

 private:
  Ism& ism_;
  SteeringPolicy policy_;
  unsigned consecutive_ = 0;
  std::atomic<bool> engaged_{false};
  std::atomic<std::uint64_t> high_fired_{0};
  std::atomic<std::uint64_t> low_fired_{0};
};

}  // namespace prism::core
