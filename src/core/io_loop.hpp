// Shared byte-stream plumbing for the real-IPC TP links (pipe + socket).
//
// Both OS-level transports — PosixPipeLink and SocketLink — speak the same
// wire format: length-prefixed frames of trivially-copyable EventRecords
// behind a fixed 24-byte header.  This header hosts that format plus the
// fd read/write loops the two links share.
//
// The write loop treats a 0-byte ::write return as a hard link failure
// instead of retrying: POSIX permits a zero return on some targets, and the
// old per-link loop spun forever on it (`while (written < len)` with `n == 0`
// never advanced).  A short return from io_write_all therefore always means
// "the link is broken at `written` bytes" — at a frame boundary if nothing
// of the current frame landed, mid-frame (stream desynchronized) otherwise.
//
// Both loops retry EINTR and, for non-blocking fds (the socket link), park
// in poll(2) on EAGAIN so callers keep pipe-like blocking semantics without
// caring which fd flavor they hold.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/transfer_protocol.hpp"

namespace prism::core {

/// Process-wide freelist of record-batch storage for the reader side of the
/// real transports.  The socket and shm readers must materialize a
/// std::vector<EventRecord> per inbound frame; without pooling that is one
/// heap allocation per frame in steady state.  Readers acquire() staging
/// storage here and the ISM release()s a batch's storage once its records
/// have been consumed (Ism::process_batch), so after warm-up the
/// reader->ISM->reader cycle recycles the same capacity and the read path
/// allocates nothing.  Bounded (kMaxPooled vectors) so a burst can never
/// turn the pool into a leak; overflow storage is simply freed.
/// Thread-safe; the lock is uncontended in practice (one reader thread and
/// one ISM processor trade vectors).
class BatchArena {
 public:
  static BatchArena& instance();

  /// A vector sized to `records` (unspecified contents) — pooled capacity
  /// when available, freshly allocated otherwise.
  std::vector<trace::EventRecord> acquire(std::size_t records);

  /// An *empty* vector with capacity >= `capacity` — the push_back-style
  /// counterpart to acquire().  Producers that build batches incrementally
  /// (BufferedLis flushes, daemon drains) use this so a warmed pool makes
  /// batch construction allocation-free.
  std::vector<trace::EventRecord> acquire_reserved(std::size_t capacity);

  /// Returns a consumed batch's storage to the pool.  Empty-capacity
  /// vectors are ignored; beyond kMaxPooled the storage is freed.
  void release(std::vector<trace::EventRecord>&& storage);

  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the pool
    std::uint64_t releases = 0;  ///< vectors accepted back into the pool
  };
  Stats stats() const;

  static constexpr std::size_t kMaxPooled = 64;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<trace::EventRecord>> pool_;
  Stats stats_;
};

/// Magic leading every wire frame ("PIPE" — the socket link deliberately
/// keeps the pipe's value so the two transports are wire-compatible).
inline constexpr std::uint32_t kFrameMagic = 0x50495045;

/// On-wire frame header.  `record_count` is untrusted input on the read
/// side: readers must bound-check it before allocating.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t source_node = 0;
  std::uint64_t t_sent_ns = 0;
  std::uint64_t record_count = 0;
};
static_assert(sizeof(FrameHeader) == 24, "wire format");

/// Serialized size of one batch on the wire.
inline std::size_t frame_wire_size(const DataBatch& b) {
  return sizeof(FrameHeader) + b.records.size() * sizeof(trace::EventRecord);
}

/// Serializes `b` as one frame appended to `wire`.  `corrupt_magic` flips
/// low magic bits (fault injection: the frame ships, the reader must catch
/// it).
void append_frame(std::vector<char>& wire, const DataBatch& b,
                  bool corrupt_magic = false);

/// Writes up to `len` bytes; returns how many actually landed.  Retries
/// EINTR, parks in poll(POLLOUT) on EAGAIN (non-blocking fds), and treats a
/// 0-byte ::write as a hard link failure (no spin).  A short return
/// distinguishes a clean failure (`0` written, stream still at a frame
/// boundary) from a mid-frame failure (stream desynchronized).
std::size_t io_write_all(int fd, const void* data, std::size_t len);

/// Reads exactly `len` bytes unless EOF/error cuts the stream short;
/// returns how many were read (a short return at a nonzero offset means a
/// truncated frame).  Retries EINTR and parks in poll(POLLIN) on EAGAIN.
std::size_t io_read_full(int fd, void* data, std::size_t len);

/// Sets the process's SIGPIPE disposition to SIG_IGN exactly once (shared
/// std::call_once), so writes to a dead peer surface as EPIPE.  A handler
/// the application installs after the first call is never clobbered.
void ignore_sigpipe_once();

}  // namespace prism::core
