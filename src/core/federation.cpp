#include "core/federation.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/clock.hpp"
#include "core/io_loop.hpp"
#include "core/shm_link.hpp"
#include "core/socket_link.hpp"
#include "obs/live/flight.hpp"
#include "obs/obs.hpp"

namespace prism::core {

namespace {

/// splitmix64 finalizer — the repo's standard cheap mixer (same family the
/// fault plane's lane seeding uses).  Bijective, so distinct ring points
/// never collide.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

obs::LineageKey obs_key(const trace::EventRecord& r) {
  return obs::lineage_key(r.node, r.process, r.seq);
}

}  // namespace

// ------------------------------------------------------------- ShardRouter

ShardRouter::ShardRouter(std::uint32_t shards, std::uint32_t virtual_nodes,
                         ShardAssign assign)
    : shards_(shards), assign_(assign) {
  if (shards == 0)
    throw std::invalid_argument("ShardRouter: shards must be >= 1");
  if (assign == ShardAssign::kHash) {
    if (virtual_nodes == 0)
      throw std::invalid_argument("ShardRouter: virtual_nodes must be >= 1");
    ring_.reserve(static_cast<std::size_t>(shards) * virtual_nodes);
    for (std::uint32_t s = 0; s < shards; ++s)
      for (std::uint32_t v = 0; v < virtual_nodes; ++v)
        ring_.emplace_back(
            mix64((static_cast<std::uint64_t>(s) << 32) | v), s);
    std::sort(ring_.begin(), ring_.end());
  }
}

std::uint32_t ShardRouter::shard_for(std::uint32_t node) const {
  if (assign_ == ShardAssign::kModulo || shards_ == 1) return node % shards_;
  // First ring point clockwise of the key's hash (wrapping).
  const std::uint64_t h = mix64(node);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t lhs, const std::pair<std::uint64_t, std::uint32_t>& p) {
        return lhs < p.first;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

// ----------------------------------------------------------- AggregatorIsm

AggregatorIsm::AggregatorIsm(std::uint32_t shard, TransferProtocol& cluster_tp,
                             DataLink& uplink,
                             std::vector<std::uint32_t> members,
                             std::size_t batch_records, bool causal_ordering)
    : shard_(shard),
      tp_(cluster_tp),
      uplink_(uplink),
      members_(std::move(members)),
      batch_records_(batch_records),
      causal_(causal_ordering) {
  if (batch_records_ == 0)
    throw std::invalid_argument("AggregatorIsm: batch_records must be > 0");
}

AggregatorIsm::~AggregatorIsm() {
  try {
    stop();
  } catch (...) {
    // Shutdown must not throw from a destructor.
  }
}

void AggregatorIsm::set_fault(fault::FaultInjector* f,
                              fault::RetryPolicy retry) {
  retry_ = retry;
  {
    std::lock_guard lk(fault_mu_);
    backoff_rng_ = stats::Rng(
        stats::Rng::hash_seed(f ? f->seed() : 0, 0x116ull, shard_));
  }
  fault_.store(f, std::memory_order_release);
}

void AggregatorIsm::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  processor_ = std::thread([this] { processor_main(); });
}

void AggregatorIsm::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // Same drain choreography as Ism::stop(): closing the cluster data links
  // lets the processor consume everything in flight and exit; control links
  // stay open through the drain and close last.
  tp_.close_data_links();
  if (processor_.joinable()) processor_.join();
  tp_.close_control_links();
}

void AggregatorIsm::mark_source_dead(std::uint32_t node) {
  std::lock_guard lk(mu_);
  if (std::find(dead_sources_.begin(), dead_sources_.end(), node) !=
      dead_sources_.end())
    return;
  dead_sources_.push_back(node);
  ++stats_.sources_dead;
}

void AggregatorIsm::processor_main() {
  if (causal_) {
    reorderer_ = std::make_unique<trace::CausalReorderer>(
        [this](const trace::EventRecord& r) { stage(r); });
    // Pre-reduce within the shard only: a cross-shard peer's sends flow
    // through a different aggregator, so waiting for them here would strand
    // the recv forever.  The unscoped root reorderer enforces those pairs.
    reorderer_->restrict_scope(members_);
  }
  staging_ = BatchArena::instance().acquire_reserved(batch_records_);

  const std::size_t n_links = tp_.data_link_count();
  if (n_links == 1) {
    // SISO cluster: block on the single input link.
    while (auto msg = tp_.receive_link(0).pop()) {
      if (auto* batch = std::get_if<DataBatch>(&*msg))
        consume_batch(std::move(*batch));
      if (dead_.load(std::memory_order_relaxed) && !death_finalized_)
        finalize_death();
    }
  } else {
    // MISO cluster: round-robin over the per-member links (Ism's loop).
    std::size_t idle_spins = 0;
    for (;;) {
      bool any = false;
      bool all_done = true;
      for (std::size_t i = 0; i < n_links; ++i) {
        auto& link = tp_.receive_link(i);
        if (!link.closed() || link.size() > 0) all_done = false;
        if (auto msg = link.try_pop()) {
          any = true;
          if (auto* batch = std::get_if<DataBatch>(&*msg))
            consume_batch(std::move(*batch));
        }
      }
      if (dead_.load(std::memory_order_relaxed) && !death_finalized_)
        finalize_death();
      if (all_done) break;
      if (!any) {
        if (++idle_spins > 64)
          std::this_thread::sleep_for(std::chrono::microseconds(100));
      } else {
        idle_spins = 0;
      }
    }
  }

  // Cluster input exhausted.
  if (!dead_.load(std::memory_order_relaxed)) {
    if (reorderer_) {
      // Stop waiting for dead members' lost sends before the final ship —
      // one group pass, so holds between two dead members resolve too.
      std::vector<std::uint32_t> dead_srcs;
      {
        std::lock_guard lk(mu_);
        dead_srcs = dead_sources_;
      }
      const std::size_t released = reorderer_->expire_nodes(dead_srcs);
      if (released) {
        std::lock_guard lk(mu_);
        stats_.expired_released += released;
        PRISM_OBS_COUNT_N("core.agg.expired_released", released);
      }
    }
    ship();  // the sub-batch-size remainder
  }
  // The final ship can itself draw the crash fault; re-check before
  // declaring residue.
  if (dead_.load(std::memory_order_relaxed)) {
    if (!death_finalized_) finalize_death();
  } else if (reorderer_) {
    // Whatever the pre-reducer still holds is causally unresolvable at this
    // level; it strands here (the root never sees it), attributed agg_queue.
    if (observer_) {
      const auto t = static_cast<double>(now_ns());
      for (const auto& r : reorderer_->held_records())
        observer_->lineage.lose(obs_key(r), obs::LossSite::kAggQueue, t);
    }
    std::lock_guard lk(mu_);
    stats_.still_held = reorderer_->held();
    stats_.held_back = reorderer_->held_back_total();
  }
  std::lock_guard lk(mu_);
  stats_.staged = staging_.size();
}

void AggregatorIsm::consume_batch(DataBatch&& batch) {
  const std::size_t n = batch.records.size();
  {
    std::lock_guard lk(mu_);
    ++stats_.batches_received;
    stats_.records_received += n;
  }
  PRISM_OBS_COUNT_N("core.agg.records_received", n);
  if (dead_.load(std::memory_order_relaxed)) {
    // Tombstone drain: a dead aggregator keeps consuming its cluster links
    // (so LIS sends still succeed and their ledgers stay untouched) but
    // everything that arrives dies with it.  This keeps the same-seed
    // ledger schedule-independent: the lost_send / lost_dead split at the
    // LISes never depends on when the aggregator died.
    {
      std::lock_guard lk(mu_);
      stats_.lost_dead += n;
    }
    if (observer_) {
      const auto t = static_cast<double>(now_ns());
      for (const auto& r : batch.records)
        observer_->lineage.lose(obs_key(r), obs::LossSite::kAggDead, t);
    }
    BatchArena::instance().release(std::move(batch.records));
    return;
  }
  if (reorderer_) {
    for (auto& r : batch.records) reorderer_->offer(r);
  } else {
    for (auto& r : batch.records) stage(r);
  }
  BatchArena::instance().release(std::move(batch.records));
  if (reorderer_ && !dead_.load(std::memory_order_relaxed)) {
    std::lock_guard lk(mu_);
    stats_.held_back = reorderer_->held_back_total();
    stats_.still_held = reorderer_->held();
  }
}

void AggregatorIsm::stage(const trace::EventRecord& r) {
  if (dead_.load(std::memory_order_relaxed)) {
    // A release that surfaced after the crash (the pre-reducer was still
    // draining when ship() died) — it dies with the aggregator.
    {
      std::lock_guard lk(mu_);
      ++stats_.lost_dead;
    }
    if (observer_)
      observer_->lineage.lose(obs_key(r), obs::LossSite::kAggDead,
                              static_cast<double>(now_ns()));
    return;
  }
  staging_.push_back(r);
  if (staging_.size() >= batch_records_) ship();
}

void AggregatorIsm::ship() {
  if (staging_.empty()) return;
  DataBatch b;
  b.source_node = shard_;  // uplink batches are keyed by shard, not node
  b.records = std::move(staging_);
  staging_ = BatchArena::instance().acquire_reserved(batch_records_);
  const std::size_t n = b.records.size();
  if (observer_) {
    keys_scratch_.clear();
    for (const auto& r : b.records) keys_scratch_.push_back(obs_key(r));
  }

  fault::FaultInjector* inj = fault_.load(std::memory_order_acquire);
  if (inj) {
    std::uint32_t attempt = 0;
    for (;;) {
      const auto f = inj->consult(fault::FaultSite::kAggForward, shard_);
      if (f.kind == fault::FaultKind::kCrash) {
        // The whole aggregator dies at the uplink send; the batch in hand
        // dies with it.  exchange (not store) so exactly one flight event
        // per shard death.
        if (!dead_.exchange(true, std::memory_order_relaxed))
          PRISM_OBS_FLIGHT("agg_crash", "forward", shard_, 1);
        {
          std::lock_guard lk(mu_);
          stats_.lost_dead += n;
        }
        if (observer_) {
          const auto t = static_cast<double>(now_ns());
          for (const auto k : keys_scratch_)
            observer_->lineage.lose(k, obs::LossSite::kAggDead, t);
        }
        BatchArena::instance().release(std::move(b.records));
        return;
      }
      if (f.kind == fault::FaultKind::kStall ||
          f.kind == fault::FaultKind::kSlowConsumer)
        fault::sleep_ns(f.stall_ns);
      if (f.kind != fault::FaultKind::kSendFail) break;
      PRISM_OBS_COUNT("core.agg.uplink_faults");
      if (++attempt >= retry_.max_attempts) {
        // Retry budget exhausted: the federation-boundary loss, charged to
        // this shard exactly once — the root never saw these records.
        {
          std::lock_guard lk(mu_);
          stats_.lost_uplink += n;
        }
        if (observer_) {
          const auto t = static_cast<double>(now_ns());
          for (const auto k : keys_scratch_)
            observer_->lineage.lose(k, obs::LossSite::kAggUplink, t);
        }
        BatchArena::instance().release(std::move(b.records));
        return;
      }
      PRISM_OBS_FLIGHT("retry", "agg_forward", shard_, attempt);
      std::uint64_t backoff;
      {
        std::lock_guard lk(fault_mu_);
        backoff = retry_.backoff_ns(attempt, backoff_rng_);
      }
      fault::sleep_ns(backoff);
    }
  }

  b.t_sent_ns = now_ns();
  if (uplink_.push(std::move(b))) {
    std::lock_guard lk(mu_);
    ++stats_.batches_forwarded;
    stats_.records_forwarded += n;
    PRISM_OBS_COUNT_N("core.agg.records_forwarded", n);
  } else {
    // Root-bound link already closed — same boundary loss site.
    {
      std::lock_guard lk(mu_);
      stats_.lost_uplink += n;
    }
    if (observer_) {
      const auto t = static_cast<double>(now_ns());
      for (const auto k : keys_scratch_)
        observer_->lineage.lose(k, obs::LossSite::kAggUplink, t);
    }
  }
}

void AggregatorIsm::finalize_death() {
  // Runs on the processor thread, at loop level — never from inside a
  // reorderer release callback, so reading the held set is safe.
  death_finalized_ = true;
  if (reorderer_) {
    const auto held = reorderer_->held_records();
    if (!held.empty()) {
      {
        std::lock_guard lk(mu_);
        stats_.lost_dead += held.size();
      }
      if (observer_) {
        const auto t = static_cast<double>(now_ns());
        for (const auto& r : held)
          observer_->lineage.lose(obs_key(r), obs::LossSite::kAggDead, t);
      }
    }
    // The reorderer stays allocated (stage() refuses everything while dead)
    // but its residue is now fully accounted as agg_dead, not still_held.
  }
  if (!staging_.empty()) {
    {
      std::lock_guard lk(mu_);
      stats_.lost_dead += staging_.size();
    }
    if (observer_) {
      const auto t = static_cast<double>(now_ns());
      for (const auto& r : staging_)
        observer_->lineage.lose(obs_key(r), obs::LossSite::kAggDead, t);
    }
    BatchArena::instance().release(std::move(staging_));
    staging_.clear();
  }
}

AggregatorStats AggregatorIsm::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

// ---------------------------------------------------- FederatedEnvironment

namespace {

const EnvironmentConfig& validate_federated(const EnvironmentConfig& cfg) {
  if (cfg.nodes == 0)
    throw std::invalid_argument("FederatedEnvironment: 0 nodes");
  if (!cfg.federation.enabled())
    throw std::invalid_argument(
        "FederatedEnvironment: federation.shards must be >= 1 "
        "(shards == 0 is the flat IntegratedEnvironment topology)");
  if (cfg.federation.agg_batch_records == 0)
    throw std::invalid_argument(
        "FederatedEnvironment: agg_batch_records must be > 0");
  if (cfg.telemetry.mode != TelemetryMode::kOff)
    throw std::invalid_argument(
        "FederatedEnvironment: telemetry is only wired to the flat topology");
  return cfg;
}

void enable_backend(TransferProtocol& tp, const EnvironmentConfig& cfg) {
  if (tp.flavor() == TpFlavor::kSocket)
    tp.enable_socket_backend(cfg.socket);
  else if (tp.flavor() == TpFlavor::kShm)
    tp.enable_shm_backend(cfg.shm);
}

std::uint64_t wire_lost(TransferProtocol& tp) {
  if (tp.socket_backend_enabled())
    return tp.socket_transport()->records_lost_total();
  if (tp.shm_backend_enabled())
    return tp.shm_transport()->records_lost_total();
  return 0;
}

void accumulate(LisStats& total, const LisStats& s) {
  total.recorded += s.recorded;
  total.dropped += s.dropped;
  total.flushes += s.flushes;
  total.records_forwarded += s.records_forwarded;
  total.flush_time_ns += s.flush_time_ns;
  total.buffered += s.buffered;
  total.lost_send += s.lost_send;
  total.lost_dead += s.lost_dead;
}

}  // namespace

FederatedEnvironment::FederatedEnvironment(EnvironmentConfig config)
    : config_(validate_federated(config)),
      router_(config_.federation.shards, config_.federation.virtual_nodes,
              config_.federation.assign) {
  // Partition the nodes into clusters.  A shard's member list is in global
  // node order, and a node's cluster-local index is its position in it.
  members_.resize(router_.shards());
  node_shard_.resize(config_.nodes);
  node_local_.resize(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    const std::uint32_t s = router_.shard_for(n);
    node_shard_[n] = s;
    node_local_[n] = static_cast<std::uint32_t>(members_[s].size());
    members_[s].push_back(n);
  }

  // Root level: one data link per shard (MISO across shards), over its own
  // transport flavor.  Aggregators are the "nodes" of this TP.
  const TpFlavor root_flavor =
      config_.federation.root_tp.value_or(config_.tp_flavor);
  const std::uint32_t shards = router_.shards();
  root_tp_ = std::make_unique<TransferProtocol>(
      root_flavor, shards, shards, config_.link_capacity);
  enable_backend(*root_tp_, config_);
  IsmConfig root_cfg = config_.ism;
  root_cfg.input = shards == 1 ? InputConfig::kSiso : InputConfig::kMiso;
  root_ism_ = std::make_unique<Ism>(*root_tp_, root_cfg);

  // Cluster level: one TP + aggregator per shard, LISes wired to their
  // cluster-local links.  Consistent hashing can leave a shard empty; the
  // TP still needs one node slot, and the idle aggregator just drains
  // nothing.
  cluster_tps_.reserve(shards);
  aggregators_.reserve(shards);
  lises_.resize(config_.nodes);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const auto& m = members_[s];
    const std::size_t cluster_nodes = std::max<std::size_t>(1, m.size());
    const std::size_t data_links =
        config_.ism.input == InputConfig::kSiso ? 1 : cluster_nodes;
    auto tp = std::make_unique<TransferProtocol>(
        config_.tp_flavor, cluster_nodes, data_links, config_.link_capacity);
    enable_backend(*tp, config_);
    for (std::uint32_t i = 0; i < m.size(); ++i) {
      const std::uint32_t node = m[i];
      // LISes keep their *global* node id (record routing, fault lanes,
      // causal streams) but send on their cluster-local link.
      switch (config_.lis_style) {
        case LisStyle::kBuffered:
          lises_[node] = std::make_unique<BufferedLis>(
              node, config_.local_buffer_capacity, make_flush_policy(config_),
              tp->data_link_for(i),
              config_.flush_policy == FlushPolicyKind::kFaof ? &coordinator_
                                                             : nullptr);
          break;
        case LisStyle::kForwarding:
          lises_[node] =
              std::make_unique<ForwardingLis>(node, tp->data_link_for(i));
          break;
        case LisStyle::kDaemon:
          lises_[node] = std::make_unique<DaemonLis>(
              node, config_.processes_per_node, config_.pipe_capacity,
              config_.sampling_period_ns, tp->data_link_for(i),
              &tp->control_link(i), config_.daemon_blocks_app_on_full_pipe,
              &probe_registry_);
          break;
      }
    }
    aggregators_.push_back(std::make_unique<AggregatorIsm>(
        s, *tp, root_tp_->data_link(s), m,
        config_.federation.agg_batch_records, config_.ism.causal_ordering));
    cluster_tps_.push_back(std::move(tp));
  }
}

FederatedEnvironment::~FederatedEnvironment() {
  try {
    stop();
  } catch (...) {
    // Shutdown must not throw from a destructor.
  }
}

void FederatedEnvironment::attach_tool(std::shared_ptr<Tool> tool) {
  root_ism_->attach_tool(std::move(tool));
}

void FederatedEnvironment::start() {
  if (started_) return;
  started_ = true;
  root_ism_->start();
  for (auto& a : aggregators_) a->start();
}

void FederatedEnvironment::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& l : lises_) l->stop();
  // Graceful degradation rolls up the levels: a dead LIS must stop being
  // waited for both at its shard's pre-reducer and at the root merge.
  for (std::uint32_t n = 0; n < lises_.size(); ++n) {
    if (!lises_[n]->dead()) continue;
    aggregators_[node_shard_[n]]->mark_source_dead(n);
    root_ism_->mark_source_dead(n);
  }
  for (auto& a : aggregators_) a->stop();
  // A dead aggregator takes its whole cluster's remaining stream with it:
  // the root expires the shard as a group, so holds between two of its
  // members resolve instead of stranding.
  for (auto& a : aggregators_)
    if (a->dead()) root_ism_->mark_sources_dead(a->members());
  root_ism_->stop();
}

Lis& FederatedEnvironment::lis(std::uint32_t node) {
  if (node >= lises_.size())
    throw std::out_of_range("FederatedEnvironment: bad node");
  return *lises_[node];
}

AggregatorIsm& FederatedEnvironment::aggregator(std::uint32_t shard) {
  if (shard >= aggregators_.size())
    throw std::out_of_range("FederatedEnvironment: bad shard");
  return *aggregators_[shard];
}

TransferProtocol& FederatedEnvironment::cluster_tp(std::uint32_t shard) {
  if (shard >= cluster_tps_.size())
    throw std::out_of_range("FederatedEnvironment: bad shard");
  return *cluster_tps_[shard];
}

std::uint32_t FederatedEnvironment::shard_of(std::uint32_t node) const {
  if (node >= node_shard_.size())
    throw std::out_of_range("FederatedEnvironment: bad node");
  return node_shard_[node];
}

const std::vector<std::uint32_t>& FederatedEnvironment::shard_members(
    std::uint32_t shard) const {
  if (shard >= members_.size())
    throw std::out_of_range("FederatedEnvironment: bad shard");
  return members_[shard];
}

void FederatedEnvironment::flush_all() {
  for (auto& l : lises_) l->flush();
}

LisStats FederatedEnvironment::total_lis_stats() const {
  LisStats total;
  for (const auto& l : lises_) accumulate(total, l->stats());
  return total;
}

LisStats FederatedEnvironment::shard_lis_stats(std::uint32_t shard) const {
  if (shard >= members_.size())
    throw std::out_of_range("FederatedEnvironment: bad shard");
  LisStats total;
  for (const std::uint32_t n : members_[shard])
    accumulate(total, lises_[n]->stats());
  return total;
}

AggregatorStats FederatedEnvironment::aggregator_stats(
    std::uint32_t shard) const {
  if (shard >= aggregators_.size())
    throw std::out_of_range("FederatedEnvironment: bad shard");
  return aggregators_[shard]->stats();
}

DegradationReport FederatedEnvironment::degradation() const {
  DegradationReport d;
  for (const auto& l : lises_) {
    if (l->dead()) ++d.lises_dead;
    const LisStats s = l->stats();
    d.records_lost_send += s.lost_send;
    d.records_lost_dead += s.lost_dead;
  }
  for (std::uint32_t s = 0; s < aggregators_.size(); ++s) {
    const AggregatorStats as = aggregators_[s]->stats();
    if (aggregators_[s]->dead()) ++d.shards_dead;
    d.records_lost_uplink += as.lost_uplink;
    d.records_lost_agg += as.lost_dead;
    d.holdback_expired += as.expired_released;
    d.control_dropped += cluster_tps_[s]->control_dropped_total();
    d.records_lost_wire += wire_lost(*cluster_tps_[s]);
  }
  const IsmStats is = root_ism_->stats();
  d.tools_failed = is.tools_failed;
  d.holdback_expired += is.expired_released;
  d.control_dropped += root_tp_->control_dropped_total();
  d.records_lost_wire += wire_lost(*root_tp_);
  return d;
}

DegradationReport FederatedEnvironment::shard_degradation(
    std::uint32_t shard) const {
  if (shard >= aggregators_.size())
    throw std::out_of_range("FederatedEnvironment: bad shard");
  DegradationReport d;
  for (const std::uint32_t n : members_[shard]) {
    if (lises_[n]->dead()) ++d.lises_dead;
    const LisStats s = lises_[n]->stats();
    d.records_lost_send += s.lost_send;
    d.records_lost_dead += s.lost_dead;
  }
  const AggregatorStats as = aggregators_[shard]->stats();
  if (aggregators_[shard]->dead()) ++d.shards_dead;
  d.records_lost_uplink += as.lost_uplink;
  d.records_lost_agg += as.lost_dead;
  d.holdback_expired = as.expired_released;
  d.control_dropped = cluster_tps_[shard]->control_dropped_total();
  d.records_lost_wire = wire_lost(*cluster_tps_[shard]);
  return d;
}

void FederatedEnvironment::set_observer(obs::PipelineObserver* o) {
  for (auto& l : lises_) l->set_observer(o);
  for (auto& a : aggregators_) a->set_observer(o);
  for (auto& tp : cluster_tps_) tp->set_observer(o);
  root_tp_->set_observer(o);
  root_ism_->set_observer(o);
}

void FederatedEnvironment::set_fault(fault::FaultInjector* f,
                                     fault::RetryPolicy retry) {
  for (auto& l : lises_) l->set_fault(f, retry);
  for (auto& a : aggregators_) a->set_fault(f, retry);
  for (auto& tp : cluster_tps_) tp->set_fault(f, retry);
  root_tp_->set_fault(f, retry);
  root_ism_->set_fault(f);
}

}  // namespace prism::core
