// A real OS-socket transfer-protocol backend (§2.2.3 names sockets as the
// Pablo / Issos TP).  Where PosixPipeLink is a standalone demonstration
// link, SocketTransport is wired into the live tier: enabling it on a
// kSocket TransferProtocol routes every data link's batches over an actual
// kernel stream socket (AF_UNIX pair by default, TCP loopback optionally)
// while the LIS and ISM code stay unchanged.
//
// Topology: per data link, a *pump* thread drains the existing in-process
// DataLink (the ingress side the LISes keep pushing into), serializes
// batches into wire frames — coalescing queued frames into one write(2) up
// to SocketOptions::coalesce_byte_budget — and writes them to a non-blocking
// socket.  One shared poll(2)-driven *reader* thread services all
// connections, reassembles frames, and delivers them into per-link bounded
// egress DataLinks, which the ISM consumes via receive_link().  Backpressure
// is preserved end to end: a full egress blocks the reader, the kernel
// socket buffer fills, the pump parks in poll(POLLOUT), the ingress link
// fills, and the LIS blocks — the §3.2.3 bottleneck chain over real fds.
// (Corollary: one slow egress can head-of-line-block the shared reader;
// that is the same single-ISM-input serialization the paper's SISO analysis
// assumes.)
//
// Wire format: identical to the pipe link (io_loop.hpp) — the frame header
// is untrusted input and record_count is bound-checked before allocation.
// Failure semantics also mirror the pipe: a frame that dies mid-write
// desynchronizes the stream, so the writer closes and stream_corrupt()
// latches; the reader treats bad magic / oversized count / truncation as a
// corrupt stream and stops.
//
// Accounting: unlike the pipe link (whose caller owns the ledger), the pump
// is the only witness to a destroyed batch, so SocketLink attributes every
// wire loss itself via the attached PipelineObserver.  Because coalesced
// frames can sit in the kernel buffer when the reader dies, the writer
// keeps an in-transit ledger (unacked_) of each frame's record identities,
// pruned against the reader's delivered count; at connection teardown any
// unconfirmed frame's records are attributed as lost, which is what keeps
// `admitted == completed + lost + in_flight` exact under chaos.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/io_loop.hpp"
#include "core/transfer_protocol.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism::core {

/// Creates a connected stream-socket pair of the given domain:
/// {read_fd, write_fd}, both blocking (SocketTransport switches its own
/// fds to non-blocking).  kUnix uses socketpair(2); kTcpLoopback binds
/// 127.0.0.1:0, connects, and sets TCP_NODELAY on both ends.  Throws
/// std::system_error on failure.  Public so cross-process tests can fork
/// around one end.
std::pair<int, int> make_socket_pair(SocketDomain domain);

/// The write side of one socket connection: drains an ingress DataLink,
/// frames + coalesces batches, and owns the writer half of the loss ledger.
/// Constructed only by SocketTransport.
class SocketLink {
 public:
  ~SocketLink();
  SocketLink(const SocketLink&) = delete;
  SocketLink& operator=(const SocketLink&) = delete;

  /// Flushes coalesced frames and closes the write fd; the reader drains
  /// what is in the kernel buffer and then sees EOF.  Idempotent.  The pump
  /// keeps draining the ingress link afterwards, attributing each further
  /// batch as a tp_send_failed loss (parity with a closed pipe writer).
  void close_writer();

  /// Test hook: flushes pending frames, then writes raw bytes to the
  /// socket, bypassing framing — lets corruption tests place arbitrary
  /// garbage on the wire.
  bool inject_raw(const void* data, std::size_t len);

  /// Attaches the fault plane (may be null).  kSocketSend is consulted once
  /// per send attempt (kSendFail retried per `retry`, stalls applied);
  /// kSocketFrame once per frame serialized (kFrameCorrupt flips the magic
  /// on the wire, kPartialFrame truncates the frame mid-write).  The lane
  /// node is the batch's source node, mirroring the pipe link.
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

  /// Attaches the observability sink (may be null).  Every record this
  /// link destroys is attributed here — the pump is the only component
  /// that still knows a destroyed batch's identity.  Call before traffic.
  void set_observer(obs::PipelineObserver* o) {
    observer_.store(o, std::memory_order_release);
  }

  /// Frames fully written to the socket (excludes destroyed frames).
  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t bytes_sent() const { return bytes_.load(); }
  /// write(2) flushes issued — with coalescing this is <= frames_sent.
  std::uint64_t writes() const { return writes_.load(); }
  /// Frames the reader parsed and delivered into the egress link.
  std::uint64_t frames_delivered() const { return delivered_.load(); }
  /// Frames the reader rejected (bad magic, oversized count, truncation).
  std::uint64_t frames_corrupt() const { return frames_corrupt_.load(); }
  /// Frames the writer destroyed (mid-frame failure, injected corruption
  /// or truncation).
  std::uint64_t frames_aborted() const { return frames_aborted_.load(); }
  /// Frames written successfully but never delivered (stranded in the
  /// kernel buffer when the stream died); attributed lost at teardown.
  std::uint64_t frames_undelivered() const {
    return frames_undelivered_.load();
  }
  /// Failed send attempts, injected and organic.
  std::uint64_t send_failures() const { return send_failures_.load(); }
  /// Records this link destroyed and attributed (all loss sites).
  std::uint64_t records_lost() const { return records_lost_.load(); }
  /// Latched once either end declared the byte stream desynchronized.
  bool stream_corrupt() const { return stream_corrupt_.load(); }

 private:
  friend class SocketTransport;

  /// A serialized-but-unflushed frame in the coalescing buffer.
  struct PendingFrame {
    std::size_t offset = 0;  ///< byte offset within wire_
    std::size_t size = 0;
    /// Record identities for loss attribution; empty when `accounted`.
    std::vector<obs::LineageKey> keys;
    std::uint64_t record_count = 0;
    /// Already attributed at enqueue (injected corrupt-magic frames).
    bool accounted = false;
  };

  SocketLink(std::size_t index, DataLink& ingress, DataLink& egress,
             int write_fd, const SocketOptions& opts);
  void start();

  void pump_main();
  void handle_batch(DataBatch&& batch);
  /// Writes the coalescing buffer.  Returns false when the stream is (or
  /// became) unusable.  write_mu_ held.
  bool flush_locked();
  void prune_acked_locked();
  void close_writer_locked();
  /// Mid-frame failure: close + latch (write_mu_ held).
  void abort_stream_locked();
  obs::PipelineObserver* observer() const {
    return observer_.load(std::memory_order_acquire);
  }
  /// Counts `count` records lost and attributes `keys` (empty when no
  /// observer is attached) to `site`.
  void lose_keys(const std::vector<obs::LineageKey>& keys,
                 std::uint64_t count, obs::LossSite site);
  void lose_batch(const DataBatch& batch, obs::LossSite site);

  // Reader-side entry points (called by SocketTransport's reader thread).
  void on_frame_delivered() {
    delivered_.fetch_add(1, std::memory_order_release);
  }
  void on_reader_corrupt() {
    frames_corrupt_.fetch_add(1, std::memory_order_relaxed);
    stream_corrupt_.store(true, std::memory_order_relaxed);
  }
  /// Connection over (EOF or corrupt): attribute every written frame the
  /// reader never confirmed.  Called with the read fd already closed, so a
  /// concurrent flush fails with EPIPE instead of racing this ledger.
  void reconcile_undelivered();

  const std::size_t index_;
  DataLink& ingress_;
  DataLink& egress_;
  const SocketOptions opts_;

  std::mutex write_mu_;
  int write_fd_ = -1;             // guarded by write_mu_
  std::vector<char> wire_;        // guarded by write_mu_
  std::deque<PendingFrame> pending_;  // guarded by write_mu_
  /// Frames on the wire awaiting reader confirmation, FIFO (write_mu_).
  std::deque<std::pair<std::vector<obs::LineageKey>, std::uint64_t>>
      unacked_;
  std::uint64_t acked_ = 0;       // guarded by write_mu_
  fault::FaultInjector* fault_ = nullptr;   // guarded by write_mu_
  fault::RetryPolicy retry_;                // guarded by write_mu_
  stats::Rng backoff_rng_{0};               // guarded by write_mu_
  /// Atomic: read by both the pump and the reader thread.
  std::atomic<obs::PipelineObserver*> observer_{nullptr};

  std::thread pump_;
  std::atomic<bool> writer_closed_{false};
  std::atomic<bool> stream_corrupt_{false};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> frames_corrupt_{0};
  std::atomic<std::uint64_t> frames_aborted_{0};
  std::atomic<std::uint64_t> frames_undelivered_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> records_lost_{0};
};

/// The socket data plane of one TransferProtocol: owns the egress links,
/// the per-link SocketLink pumps, and the single reader thread that
/// services every connection.
class SocketTransport {
 public:
  /// Builds one connected socket per data link of `tp` and starts the
  /// reader + pumps.  `tp` must outlive this object.
  SocketTransport(TransferProtocol& tp, SocketOptions opts);
  ~SocketTransport();
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::size_t link_count() const { return links_.size(); }
  SocketLink& link(std::size_t index) { return *links_.at(index); }
  /// The bounded buffer the ISM consumes for data link `index`.
  DataLink& egress(std::size_t index) { return *egress_.at(index); }
  const SocketOptions& options() const { return opts_; }

  /// Forwarded to every link.  Call before traffic for deterministic
  /// fault lanes (kSocketSend / kSocketFrame, node = batch source).
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});
  void set_observer(obs::PipelineObserver* o);

  /// Blocks until every pump has drained its (closed) ingress link and the
  /// reader has retired every connection — after this, all wire-side loss
  /// accounting is final and the ledgers stop moving.  Requires the ingress
  /// links closed first, and a consumer still draining the egress links
  /// while healthy streams flush (the ISM shutdown path provides both).
  /// Idempotent.
  void quiesce();

  /// Sum of records destroyed and attributed on the wire, all links.
  std::uint64_t records_lost_total() const;
  std::uint64_t frames_delivered_total() const;

 private:
  /// Reader-side reassembly state of one connection.
  struct Conn {
    int fd = -1;
    std::size_t link = 0;
    bool done = false;
    bool in_payload = false;
    FrameHeader hdr;
    DataBatch batch;
    std::size_t got = 0;  ///< bytes of the current target received
  };

  void reader_main();
  /// Drains readable bytes; returns when the connection blocks or ends.
  void service(Conn& c);
  void deliver(Conn& c);
  void finish(Conn& c, bool corrupt);

  SocketOptions opts_;
  std::vector<std::unique_ptr<DataLink>> egress_;
  std::vector<std::unique_ptr<SocketLink>> links_;
  std::vector<Conn> conns_;  // reader thread only (after construction)
  std::thread reader_;
};

}  // namespace prism::core
