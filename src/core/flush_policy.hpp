// Local-buffer flush policies (§3.1).
//
// "We have identified two management policies for the PICL IS: Flush One
// buffer when it Fills (FOF) and Flush All the buffers when One Fills
// (FAOF)."  Policies are small strategy objects consulted by BufferedLis
// after every append; `global()` distinguishes FAOF-style gang flushes
// (which require coordination across all LISes) from local decisions.
//
// ThresholdFlush and AdaptiveThresholdFlush extend the paper's static
// policies: the adaptive one tracks the observed arrival rate and flushes
// early enough to bound the expected flush frequency — the "adaptive
// management policy" direction the paper prescribes for next-generation ISs
// (§5).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string_view>

#include "trace/buffer.hpp"

namespace prism::core {

class FlushPolicy {
 public:
  virtual ~FlushPolicy() = default;
  /// Consulted after each append: should this LIS flush now?
  virtual bool should_flush(const trace::TraceBuffer& buffer) = 0;
  /// True when a triggered flush must gang-flush every LIS (FAOF).
  virtual bool global() const { return false; }
  virtual std::string_view name() const = 0;
};

/// FOF: flush this buffer when it fills.
class FlushOnFill final : public FlushPolicy {
 public:
  bool should_flush(const trace::TraceBuffer& b) override { return b.full(); }
  std::string_view name() const override { return "FOF"; }
};

/// FAOF: when one buffer fills, flush all buffers.
class FlushAllOnFill final : public FlushPolicy {
 public:
  bool should_flush(const trace::TraceBuffer& b) override { return b.full(); }
  bool global() const override { return true; }
  std::string_view name() const override { return "FAOF"; }
};

/// Flush when occupancy reaches `fraction` of capacity (0 < fraction <= 1).
/// Flushing before completely full keeps the hot path from ever dropping.
class ThresholdFlush final : public FlushPolicy {
 public:
  explicit ThresholdFlush(double fraction) : fraction_(fraction) {
    if (!(fraction > 0 && fraction <= 1))
      throw std::invalid_argument("ThresholdFlush: fraction out of (0,1]");
  }
  bool should_flush(const trace::TraceBuffer& b) override {
    return static_cast<double>(b.size()) >=
           fraction_ * static_cast<double>(b.capacity());
  }
  std::string_view name() const override { return "threshold"; }

 private:
  double fraction_;
};

/// Adaptive policy: estimates the event arrival rate with an exponentially
/// weighted mean of inter-arrival gaps and flushes when the buffer holds
/// more than `target_flush_interval` worth of expected arrivals, clamped to
/// the capacity.  Bounds both flush frequency and buffer residency latency.
class AdaptiveThresholdFlush final : public FlushPolicy {
 public:
  /// `target_flush_interval_ns`: desired time between flushes.
  /// `smoothing` in (0,1]: EWMA weight of the newest gap.
  AdaptiveThresholdFlush(std::uint64_t target_flush_interval_ns,
                         double smoothing = 0.1)
      : target_ns_(target_flush_interval_ns), alpha_(smoothing) {
    if (target_flush_interval_ns == 0)
      throw std::invalid_argument("AdaptiveThresholdFlush: zero target");
    if (!(smoothing > 0 && smoothing <= 1))
      throw std::invalid_argument("AdaptiveThresholdFlush: bad smoothing");
  }

  /// Feeds the arrival timestamp (ns) of the record just appended.
  void observe_arrival(std::uint64_t t_ns) {
    if (have_last_) {
      const auto gap = static_cast<double>(t_ns - last_ns_);
      mean_gap_ns_ =
          mean_gap_ns_ == 0 ? gap : alpha_ * gap + (1 - alpha_) * mean_gap_ns_;
    }
    last_ns_ = t_ns;
    have_last_ = true;
  }

  bool should_flush(const trace::TraceBuffer& b) override {
    if (b.full()) return true;
    if (mean_gap_ns_ <= 0) return false;
    const double expected_records =
        static_cast<double>(target_ns_) / mean_gap_ns_;
    return static_cast<double>(b.size()) >= expected_records;
  }

  double estimated_rate_per_sec() const {
    return mean_gap_ns_ > 0 ? 1e9 / mean_gap_ns_ : 0.0;
  }

  std::string_view name() const override { return "adaptive"; }

 private:
  std::uint64_t target_ns_;
  double alpha_;
  double mean_gap_ns_ = 0;
  std::uint64_t last_ns_ = 0;
  bool have_last_ = false;
};

}  // namespace prism::core
