// Local Instrumentation Servers (§2.2.1).
//
// "The Local Instrumentation Server (LIS) captures instrumentation data of
// interest from the concurrent application processes and forwards the data
// to other IS modules ... an LIS can simply comprise instrumentation library
// calls responsible for storing data in local buffers or forwarding data to
// analysis tools.  Or, as in Paradyn, it may consist of a separate process
// for each node of the concurrent system."
//
// Three live implementations, one per case study:
//   * BufferedLis   — PICL-style: library calls append to a local buffer;
//                     a FlushPolicy decides when to ship (FOF / FAOF / ...).
//   * ForwardingLis — Vista-style: "event forwarding involves only one
//                     system call per event" — no local buffering.
//   * DaemonLis     — Paradyn-style: application processes write samples to
//                     per-process pipes; a daemon thread drains the pipe
//                     heads every sampling period and forwards to the ISM.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/flush_policy.hpp"
#include "core/transfer_protocol.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"
#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace prism::core {

struct LisStats {
  std::uint64_t recorded = 0;        ///< events accepted from the application
  std::uint64_t dropped = 0;         ///< events refused (overflow / dead LIS)
  std::uint64_t flushes = 0;         ///< batches shipped to the ISM
  std::uint64_t records_forwarded = 0;
  std::uint64_t flush_time_ns = 0;   ///< cumulative time in flush operations
  std::uint64_t buffered = 0;        ///< records still held locally (snapshot)
  /// Accepted records destroyed by a TP send failure (closed link or retry
  /// budget exhausted) — the fault plane's tp_send_failed/retry_exhausted
  /// loss sites.
  std::uint64_t lost_send = 0;
  /// Accepted records destroyed because this LIS died (crash injection or
  /// organic component death).
  std::uint64_t lost_dead = 0;

  /// Records offered by the application (accepted + refused).
  std::uint64_t records_in() const { return recorded + dropped; }
  /// Record-conservation invariant: every offered record is accounted for —
  /// forwarded toward the ISM, dropped, destroyed by a send failure or
  /// component death, or still buffered locally.  Exact at quiescence (after
  /// stop()); mid-run a record being moved between buffer and batch can be
  /// transiently uncounted.
  bool conserved() const {
    return records_in() ==
           records_forwarded + dropped + buffered + lost_send + lost_dead;
  }
};

class Lis {
 public:
  explicit Lis(std::uint32_t node) : node_(node) {}
  virtual ~Lis() = default;
  Lis(const Lis&) = delete;
  Lis& operator=(const Lis&) = delete;

  /// Hot path: accept one event from an application thread.  Thread-safe.
  virtual void record(const trace::EventRecord& r) = 0;
  /// Force any locally held data toward the ISM.
  virtual void flush() = 0;
  /// Stop accepting and shut down internal threads, flushing first.
  virtual void stop() = 0;
  virtual std::string_view kind() const = 0;

  std::uint32_t node() const { return node_; }
  virtual LisStats stats() const = 0;

  /// Attaches the model-time observability sink (may be null to detach).
  /// When `capture`, record() is the pipeline's lineage capture point; pass
  /// false when an upstream TracingThrottle already captures.  Call before
  /// concurrent record() traffic begins.
  void set_observer(obs::PipelineObserver* o, bool capture = true) {
    observer_ = o;
    obs_capture_ = capture;
  }

  /// Attaches the fault plane (may be null to detach; null is the default
  /// and leaves every code path bit-identical to pre-fault builds).  Call
  /// before traffic begins.  kTpSend is consulted once per shipped batch
  /// (plus once per retry); injected transient failures follow `retry`.
  /// The pointer is published with release/acquire ordering because the
  /// daemon style's tick thread is already running when this is callable
  /// (it starts in the constructor) — the policy and RNG writes below must
  /// be visible before the thread can observe a non-null injector.
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {}) {
    retry_ = retry;
    {
      std::lock_guard lk(fault_mu_);
      backoff_rng_ = stats::Rng(
          stats::Rng::hash_seed(f ? f->seed() : 0, 0x115ull, node_));
    }
    fault_.store(f, std::memory_order_release);
  }

  /// True once this LIS has died (crash injection or organic failure).  A
  /// dead LIS refuses new records (attributed lis_dead) and ships nothing.
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

 protected:
  static obs::LineageKey obs_key(const trace::EventRecord& r) {
    return obs::lineage_key(r.node, r.process, r.seq);
  }

  /// Terminal outcome of a faulted TP send (see tp_send).
  enum class SendOutcome : std::uint8_t {
    kDelivered,  ///< the batch reached the data link
    kClosed,     ///< the link refused the batch (closed) — unretryable
    kExhausted,  ///< injected transient failures outlived the retry budget
    kCrashed,    ///< the fault plane declared this LIS dead at the send
  };

  /// Ships one batch through the fault plane: consults kTpSend, applies
  /// stalls, retries injected send failures with jittered backoff, and
  /// latches dead_ on an injected crash.  With a null injector this is
  /// exactly `link.push(std::move(batch))`.
  SendOutcome tp_send(DataLink& link, DataBatch&& batch);

  std::uint32_t node_;
  obs::PipelineObserver* observer_ = nullptr;
  bool obs_capture_ = true;
  std::atomic<fault::FaultInjector*> fault_{nullptr};
  fault::RetryPolicy retry_;
  /// Guards backoff_rng_ (tp_send may run concurrently from app threads in
  /// the forwarding style; the retry path is cold).
  std::mutex fault_mu_;
  stats::Rng backoff_rng_{0};
  std::atomic<bool> dead_{false};
};

class BufferedLis;

/// Coordinates FAOF gang flushes: "All processes are context-switched to
/// flush their local buffers" (§3.1.3).  In-process stand-in for the
/// broadcast a multicomputer IS would use.
class FlushCoordinator {
 public:
  void attach(BufferedLis* lis);
  void detach(BufferedLis* lis);
  /// Flushes every attached LIS.  Reentrancy-safe: a flush triggered while
  /// a gang flush is in progress folds into the ongoing one.
  void flush_all();
  std::uint64_t gang_flushes() const { return gang_flushes_.load(); }

 private:
  std::mutex mu_;
  std::vector<BufferedLis*> members_;
  std::atomic<bool> in_progress_{false};
  std::atomic<std::uint64_t> gang_flushes_{0};
};

/// PICL-style library LIS with a local trace buffer.
class BufferedLis final : public Lis {
 public:
  /// `coordinator` may be null for purely local policies (FOF); required
  /// when `policy->global()` (FAOF).
  BufferedLis(std::uint32_t node, std::size_t buffer_capacity,
              std::unique_ptr<FlushPolicy> policy, DataLink& to_ism,
              FlushCoordinator* coordinator = nullptr);
  ~BufferedLis() override;

  void record(const trace::EventRecord& r) override;
  void flush() override;
  void stop() override;
  std::string_view kind() const override { return "buffered"; }
  LisStats stats() const override;

  std::string_view policy_name() const { return policy_->name(); }

 private:
  void flush_locked(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  trace::TraceBuffer buffer_;
  std::unique_ptr<FlushPolicy> policy_;
  DataLink& link_;
  FlushCoordinator* coordinator_;
  LisStats stats_;
  bool stopped_ = false;
  /// Lineage-key staging reused across flushes (guarded by mu_), so an
  /// observed flush does not re-allocate the key list every time.
  std::vector<obs::LineageKey> keys_scratch_;
  const std::string tl_buffer_;  ///< timeline series: buffer occupancy
};

/// Vista-style bufferless event forwarding.
class ForwardingLis final : public Lis {
 public:
  ForwardingLis(std::uint32_t node, DataLink& to_ism);

  void record(const trace::EventRecord& r) override;
  void flush() override {}
  void stop() override;
  std::string_view kind() const override { return "forwarding"; }
  LisStats stats() const override;

 private:
  DataLink& link_;
  mutable std::mutex mu_;
  LisStats stats_;
  bool stopped_ = false;
};

/// Paradyn-style daemon LIS.
class DaemonLis final : public Lis {
 public:
  /// `pipe_capacity` bounds each per-process pipe; a full pipe blocks the
  /// writing application thread (the §3.2.3 bottleneck) when
  /// `block_on_full_pipe`, else drops.
  /// `probes` (optional) receives kEnable/DisableInstrumentation control
  /// messages — the daemon is the dynamic-instrumentation agent on its node.
  DaemonLis(std::uint32_t node, std::uint32_t n_processes,
            std::size_t pipe_capacity, std::uint64_t sampling_period_ns,
            DataLink& to_ism, ControlLink* control = nullptr,
            bool block_on_full_pipe = true,
            class ProbeRegistry* probes = nullptr);
  ~DaemonLis() override;

  void record(const trace::EventRecord& r) override;
  void flush() override;
  void stop() override;
  std::string_view kind() const override { return "daemon"; }
  LisStats stats() const override;

  void set_sampling_period_ns(std::uint64_t ns) {
    sampling_period_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t sampling_period_ns() const {
    return sampling_period_ns_.load(std::memory_order_relaxed);
  }
  /// Cumulative ns application threads spent blocked on full pipes.
  std::uint64_t app_block_time_ns() const;
  /// CPU-ish time the daemon thread spent actively collecting/forwarding.
  std::uint64_t daemon_busy_ns() const { return daemon_busy_ns_.load(); }

 private:
  void daemon_main();
  void drain_once();
  /// Injected crash: latches dead_, stops the loop, closes the pipes and
  /// accounts every orphaned record as a lis_dead loss.
  void die();

  std::vector<std::unique_ptr<Channel<trace::EventRecord>>> pipes_;
  DataLink& link_;
  ControlLink* control_;
  class ProbeRegistry* probes_;
  bool block_on_full_pipe_;
  std::atomic<std::uint64_t> sampling_period_ns_;
  std::atomic<bool> running_{false};
  std::thread daemon_;
  mutable std::mutex mu_;
  LisStats stats_;
  std::atomic<std::uint64_t> daemon_busy_ns_{0};
  const std::string tl_backlog_;  ///< timeline series: pipe occupancy
};

}  // namespace prism::core
