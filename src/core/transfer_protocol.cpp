#include "core/transfer_protocol.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace prism::core {

std::string_view to_string(ControlKind k) {
  switch (k) {
    case ControlKind::kStart: return "start";
    case ControlKind::kStop: return "stop";
    case ControlKind::kFlushAll: return "flush_all";
    case ControlKind::kSetSamplingPeriod: return "set_sampling_period";
    case ControlKind::kEnableInstrumentation: return "enable_instrumentation";
    case ControlKind::kDisableInstrumentation: return "disable_instrumentation";
    case ControlKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::string_view to_string(TpFlavor f) {
  switch (f) {
    case TpFlavor::kPipe: return "pipe";
    case TpFlavor::kSocket: return "socket";
    case TpFlavor::kRpc: return "rpc";
    case TpFlavor::kCustom: return "custom";
  }
  return "unknown";
}

TransferProtocol::TransferProtocol(TpFlavor flavor, std::size_t nodes,
                                   std::size_t data_links,
                                   std::size_t link_capacity)
    : flavor_(flavor) {
  if (nodes == 0) throw std::invalid_argument("TransferProtocol: 0 nodes");
  if (data_links == 0 || (data_links != 1 && data_links != nodes))
    throw std::invalid_argument(
        "TransferProtocol: data_links must be 1 (SISO) or == nodes (MISO)");
  datas_.reserve(data_links);
  for (std::size_t i = 0; i < data_links; ++i)
    datas_.push_back(std::make_unique<DataLink>(link_capacity));
  controls_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i)
    controls_.push_back(std::make_unique<ControlLink>(link_capacity));
}

DataLink& TransferProtocol::data_link_for(std::uint32_t node) {
  if (node >= controls_.size())
    throw std::out_of_range("TransferProtocol: bad node");
  return datas_.size() == 1 ? *datas_[0] : *datas_.at(node);
}

ControlLink& TransferProtocol::control_link(std::uint32_t node) {
  return *controls_.at(node);
}

void TransferProtocol::broadcast(const ControlMessage& m) {
  PRISM_OBS_COUNT("core.tp.control_broadcasts");
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    ControlMessage copy = m;
    copy.target_node = static_cast<std::uint32_t>(i);
    if (!controls_[i]->try_push(copy)) {
      // A full or closed control link silently loses the message for that
      // node (the broadcast is best-effort by design); surface the loss.
      PRISM_OBS_COUNT("core.tp.control_dropped");
    }
  }
}

void TransferProtocol::sample_depths(obs::Timeline* tl, double t) const {
  if (!tl) return;
  for (std::size_t i = 0; i < datas_.size(); ++i)
    tl->sample_changed("tp.link" + std::to_string(i) + ".depth", t,
                       static_cast<double>(datas_[i]->size()));
}

void TransferProtocol::close_all() {
  close_data_links();
  close_control_links();
}

void TransferProtocol::close_data_links() {
  for (auto& d : datas_) d->close();
}

void TransferProtocol::close_control_links() {
  for (auto& c : controls_) c->close();
}

}  // namespace prism::core
