#include "core/transfer_protocol.hpp"

#include <stdexcept>

#include "core/shm_link.hpp"
#include "core/socket_link.hpp"
#include "obs/live/flight.hpp"
#include "obs/obs.hpp"

namespace prism::core {

std::string_view to_string(ControlKind k) {
  switch (k) {
    case ControlKind::kStart: return "start";
    case ControlKind::kStop: return "stop";
    case ControlKind::kFlushAll: return "flush_all";
    case ControlKind::kSetSamplingPeriod: return "set_sampling_period";
    case ControlKind::kEnableInstrumentation: return "enable_instrumentation";
    case ControlKind::kDisableInstrumentation: return "disable_instrumentation";
    case ControlKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

bool lifecycle_critical(ControlKind k) {
  return k == ControlKind::kShutdown || k == ControlKind::kFlushAll ||
         k == ControlKind::kStop;
}

std::string_view to_string(TpFlavor f) {
  switch (f) {
    case TpFlavor::kPipe: return "pipe";
    case TpFlavor::kSocket: return "socket";
    case TpFlavor::kRpc: return "rpc";
    case TpFlavor::kCustom: return "custom";
    case TpFlavor::kShm: return "shm";
  }
  return "unknown";
}

std::string_view to_string(SocketDomain d) {
  switch (d) {
    case SocketDomain::kUnix: return "unix";
    case SocketDomain::kTcpLoopback: return "tcp";
  }
  return "unknown";
}

TransferProtocol::TransferProtocol(TpFlavor flavor, std::size_t nodes,
                                   std::size_t data_links,
                                   std::size_t link_capacity)
    : flavor_(flavor) {
  if (nodes == 0) throw std::invalid_argument("TransferProtocol: 0 nodes");
  if (data_links == 0 || (data_links != 1 && data_links != nodes))
    throw std::invalid_argument(
        "TransferProtocol: data_links must be 1 (SISO) or == nodes (MISO)");
  datas_.reserve(data_links);
  for (std::size_t i = 0; i < data_links; ++i)
    datas_.push_back(std::make_unique<DataLink>(link_capacity));
  controls_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i)
    controls_.push_back(std::make_unique<ControlLink>(link_capacity));
}

TransferProtocol::~TransferProtocol() {
  if (socket_ || shm_) {
    // The pumps exit once their ingress links close; the reader follows the
    // resulting EOFs.  Closing first makes the joins in the backend
    // destructors finite even when the owner never ran an orderly shutdown.
    close_data_links();
    socket_.reset();
    shm_.reset();
  }
}

void TransferProtocol::enable_socket_backend(const SocketOptions& opts) {
  if (flavor_ != TpFlavor::kSocket)
    throw std::logic_error(
        "TransferProtocol: socket backend requires TpFlavor::kSocket");
  if (socket_)
    throw std::logic_error("TransferProtocol: socket backend already enabled");
  socket_ = std::make_unique<SocketTransport>(*this, opts);
  socket_->set_fault(fault_, retry_);
  socket_->set_observer(observer_);
}

void TransferProtocol::enable_shm_backend(const ShmOptions& opts) {
  if (flavor_ != TpFlavor::kShm)
    throw std::logic_error(
        "TransferProtocol: shm backend requires TpFlavor::kShm");
  if (shm_)
    throw std::logic_error("TransferProtocol: shm backend already enabled");
  shm_ = std::make_unique<ShmTransport>(*this, opts);
  shm_->set_fault(fault_, retry_);
  shm_->set_observer(observer_);
}

DataLink& TransferProtocol::receive_link(std::size_t index) {
  if (socket_) return socket_->egress(index);
  if (shm_) return shm_->egress(index);
  return data_link(index);
}

SocketLink& TransferProtocol::socket_link(std::size_t index) {
  if (!socket_)
    throw std::logic_error("TransferProtocol: socket backend not enabled");
  return socket_->link(index);
}

ShmLink& TransferProtocol::shm_link(std::size_t index) {
  if (!shm_)
    throw std::logic_error("TransferProtocol: shm backend not enabled");
  return shm_->link(index);
}

void TransferProtocol::set_fault(fault::FaultInjector* f,
                                 fault::RetryPolicy retry) {
  fault_ = f;
  retry_ = retry;
  backoff_rng_ =
      stats::Rng(stats::Rng::hash_seed(f ? f->seed() : 0, 0x7c0ull));
  if (socket_) socket_->set_fault(f, retry);
  if (shm_) shm_->set_fault(f, retry);
}

void TransferProtocol::set_observer(obs::PipelineObserver* o) {
  observer_ = o;
  if (socket_) socket_->set_observer(o);
  if (shm_) shm_->set_observer(o);
}

DataLink& TransferProtocol::data_link_for(std::uint32_t node) {
  if (node >= controls_.size())
    throw std::out_of_range("TransferProtocol: bad node");
  return datas_.size() == 1 ? *datas_[0] : *datas_.at(node);
}

ControlLink& TransferProtocol::control_link(std::uint32_t node) {
  return *controls_.at(node);
}

bool TransferProtocol::deliver_control(std::size_t node,
                                       const ControlMessage& m) {
  // Injected control-plane faults: one consult per (broadcast, node); a
  // kSendFail on a critical kind is retried with backoff, mirroring the TP
  // data path.  Organic full-link pressure on critical kinds gets bounded
  // blocking (push_for) instead of the old silent try_push drop.
  const bool critical = lifecycle_critical(m.kind);
  std::uint32_t attempt = 0;
  for (;;) {
    if (fault_) {
      const auto f = fault_->consult(fault::FaultSite::kTpControl,
                                     static_cast<std::uint32_t>(node));
      if (f.kind == fault::FaultKind::kStall ||
          f.kind == fault::FaultKind::kSlowConsumer)
        fault::sleep_ns(f.stall_ns);
      if (f.kind == fault::FaultKind::kSendFail) {
        PRISM_OBS_COUNT("core.tp.control_send_faults");
        if (!critical || ++attempt >= retry_.max_attempts) return false;
        fault::sleep_ns(retry_.backoff_ns(attempt, backoff_rng_));
        continue;
      }
    }
    if (critical)
      return controls_[node]->push_for(
          m, std::chrono::nanoseconds(control_send_timeout_ns_));
    return controls_[node]->try_push(m);
  }
}

void TransferProtocol::broadcast(const ControlMessage& m) {
  PRISM_OBS_COUNT("core.tp.control_broadcasts");
  std::lock_guard lk(control_mu_);
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    ControlMessage copy = m;
    copy.target_node = static_cast<std::uint32_t>(i);
    if (!deliver_control(i, copy)) {
      // The message for this node is lost (closed link, timeout on a full
      // critical link, or injected failure past the retry budget).  Never
      // silent: the loss is attributed to its ControlKind.
      control_dropped_[static_cast<std::size_t>(m.kind)].fetch_add(
          1, std::memory_order_relaxed);
      PRISM_OBS_COUNT("core.tp.control_dropped");
      PRISM_OBS_FLIGHT("control_drop", to_string(m.kind), i, 1);
    }
  }
}

std::uint64_t TransferProtocol::control_dropped_total() const {
  std::uint64_t total = 0;
  for (const auto& c : control_dropped_)
    total += c.load(std::memory_order_relaxed);
  return total;
}

void TransferProtocol::sample_depths(obs::Timeline* tl, double t) const {
  if (!tl) return;
  for (std::size_t i = 0; i < datas_.size(); ++i)
    tl->sample_changed("tp.link" + std::to_string(i) + ".depth", t,
                       static_cast<double>(datas_[i]->size()));
}

void TransferProtocol::close_all() {
  close_data_links();
  close_control_links();
}

void TransferProtocol::close_data_links() {
  for (auto& d : datas_) d->close();
  // The backend pumps drain the closed links asynchronously (attributing
  // whatever a dead stream can no longer carry); wait for that accounting
  // to finish so ledgers read after shutdown are final, not racing.
  if (socket_) socket_->quiesce();
  if (shm_) shm_->quiesce();
}

void TransferProtocol::close_control_links() {
  for (auto& c : controls_) c->close();
}

}  // namespace prism::core
