#include "core/steering.hpp"

#include <stdexcept>

namespace prism::core {

SteeringTool::SteeringTool(Ism& ism, SteeringPolicy policy)
    : ism_(ism), policy_(policy) {
  if (policy_.consecutive_needed == 0)
    throw std::invalid_argument("SteeringTool: consecutive_needed == 0");
  if (!(policy_.high_threshold > policy_.low_threshold))
    throw std::invalid_argument(
        "SteeringTool: high_threshold must exceed low_threshold");
}

void SteeringTool::consume(const trace::EventRecord& r) {
  if (r.kind != trace::EventKind::kSample || r.tag != policy_.metric_tag)
    return;
  const double v = trace::unpack_double(r.payload);
  if (!engaged_.load(std::memory_order_relaxed)) {
    if (v > policy_.high_threshold) {
      if (++consecutive_ >= policy_.consecutive_needed) {
        engaged_.store(true);
        consecutive_ = 0;
        high_fired_.fetch_add(1);
        ism_.broadcast_control(policy_.high_action);
      }
    } else {
      consecutive_ = 0;
    }
  } else {
    if (v < policy_.low_threshold) {
      if (++consecutive_ >= policy_.consecutive_needed) {
        engaged_.store(false);
        consecutive_ = 0;
        if (policy_.low_action) {
          low_fired_.fetch_add(1);
          ism_.broadcast_control(*policy_.low_action);
        }
      }
    } else {
      consecutive_ = 0;
    }
  }
}

}  // namespace prism::core
