#include "core/lis.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/clock.hpp"
#include "core/io_loop.hpp"
#include "core/probe_registry.hpp"
#include "obs/live/flight.hpp"
#include "obs/obs.hpp"

namespace prism::core {

// ---------------------------------------------------------------- Lis

Lis::SendOutcome Lis::tp_send(DataLink& link, DataBatch&& batch) {
  fault::FaultInjector* inj = fault_.load(std::memory_order_acquire);
  if (!inj)
    return link.push(std::move(batch)) ? SendOutcome::kDelivered
                                       : SendOutcome::kClosed;
  std::uint32_t attempt = 0;
  for (;;) {
    const auto f = inj->consult(fault::FaultSite::kTpSend, node_);
    if (f.kind == fault::FaultKind::kCrash) {
      // exchange (not store) so exactly one lis_crash event per component
      // death reaches the flight recorder, whichever path latched it.
      if (!dead_.exchange(true, std::memory_order_relaxed))
        PRISM_OBS_FLIGHT("lis_crash", "tp_send", node_, 1);
      return SendOutcome::kCrashed;
    }
    if (f.kind == fault::FaultKind::kStall ||
        f.kind == fault::FaultKind::kSlowConsumer)
      fault::sleep_ns(f.stall_ns);
    if (f.kind != fault::FaultKind::kSendFail) {
      return link.push(std::move(batch)) ? SendOutcome::kDelivered
                                         : SendOutcome::kClosed;
    }
    PRISM_OBS_COUNT("core.tp.send_faults");
    if (++attempt >= retry_.max_attempts) return SendOutcome::kExhausted;
    PRISM_OBS_COUNT("core.tp.send_retries");
    PRISM_OBS_FLIGHT("retry", "tp_send", node_, attempt);
    std::uint64_t backoff;
    {
      std::lock_guard lk(fault_mu_);
      backoff = retry_.backoff_ns(attempt, backoff_rng_);
    }
    fault::sleep_ns(backoff);
  }
}

// ---------------------------------------------------------------- FlushCoordinator

void FlushCoordinator::attach(BufferedLis* lis) {
  std::lock_guard lk(mu_);
  members_.push_back(lis);
}

void FlushCoordinator::detach(BufferedLis* lis) {
  std::lock_guard lk(mu_);
  members_.erase(std::remove(members_.begin(), members_.end(), lis),
                 members_.end());
}

void FlushCoordinator::flush_all() {
  // A gang flush triggered from within a gang flush (another buffer filled
  // while we were flushing) folds into the ongoing one.
  bool expected = false;
  if (!in_progress_.compare_exchange_strong(expected, true)) return;
  std::vector<BufferedLis*> snapshot;
  {
    std::lock_guard lk(mu_);
    snapshot = members_;
  }
  {
    PRISM_OBS_SPAN("lis.gang_flush", "core");
    for (BufferedLis* l : snapshot) l->flush();
  }
  ++gang_flushes_;
  PRISM_OBS_COUNT("core.lis.gang_flushes");
  in_progress_.store(false);
}

// ---------------------------------------------------------------- BufferedLis

BufferedLis::BufferedLis(std::uint32_t node, std::size_t buffer_capacity,
                         std::unique_ptr<FlushPolicy> policy, DataLink& to_ism,
                         FlushCoordinator* coordinator)
    : Lis(node),
      buffer_(buffer_capacity, trace::OverflowPolicy::kDrop),
      policy_(std::move(policy)),
      link_(to_ism),
      coordinator_(coordinator),
      tl_buffer_("lis" + std::to_string(node) + ".buffer") {
  if (!policy_) throw std::invalid_argument("BufferedLis: null policy");
  if (policy_->global() && !coordinator_)
    throw std::invalid_argument(
        "BufferedLis: a global (FAOF) policy needs a FlushCoordinator");
  if (coordinator_) coordinator_->attach(this);
}

BufferedLis::~BufferedLis() {
  if (coordinator_) coordinator_->detach(this);
}

void BufferedLis::record(const trace::EventRecord& r) {
  bool trigger_global = false;
  {
    std::unique_lock lk(mu_);
    if (stopped_) return;
    if (dead()) {
      ++stats_.dropped;
      PRISM_OBS_COUNT("core.lis.dropped");
      if (observer_) {
        const auto k = obs_key(r);
        const auto t = static_cast<double>(now_ns());
        if (obs_capture_) observer_->lineage.offer(k, t);
        observer_->lineage.lose(k, obs::LossSite::kLisDead, t);
      }
      return;
    }
    const bool accepted = buffer_.append(r);
    if (accepted) {
      ++stats_.recorded;
      PRISM_OBS_COUNT("core.lis.recorded");
    } else {
      ++stats_.dropped;
      PRISM_OBS_COUNT("core.lis.dropped");
    }
    if (observer_) {
      const auto k = obs_key(r);
      const auto t = static_cast<double>(now_ns());
      if (obs_capture_) observer_->lineage.offer(k, t);
      if (accepted) {
        observer_->lineage.stamp(k, obs::PipelineStage::kLisEnqueue, t);
      } else {
        observer_->lineage.lose(k, obs::LossSite::kLisBuffer, t);
      }
      observer_->timeline.sample_changed(
          tl_buffer_, t, static_cast<double>(buffer_.size()));
    }
    PRISM_OBS_HIST_B("core.lis.buffer_occupancy_pct",
                     ::prism::obs::Histogram::percent_bounds(),
                     100.0 * static_cast<double>(buffer_.size()) /
                         static_cast<double>(buffer_.capacity()));
    if (policy_->should_flush(buffer_)) {
      if (policy_->global()) {
        trigger_global = true;  // coordinator flushes everyone, incl. us
      } else {
        flush_locked(lk);
      }
    }
  }
  if (trigger_global) coordinator_->flush_all();
}

void BufferedLis::flush() {
  std::unique_lock lk(mu_);
  flush_locked(lk);
}

void BufferedLis::flush_locked(std::unique_lock<std::mutex>& lk) {
  if (buffer_.empty()) return;
  if (dead()) return;  // crash residue was accounted when the LIS died
  PRISM_OBS_SPAN("lis.flush", "core");
  const std::uint64_t t0 = now_ns();
  DataBatch batch;
  batch.source_node = node_;
  batch.t_sent_ns = t0;
  // Swap recycled batch storage (BatchArena) into the buffer and ship the
  // buffer's warmed backing store: a steady-state flush allocates nothing.
  batch.records = BatchArena::instance().acquire_reserved(buffer_.capacity());
  buffer_.drain_into(batch.records);
  const std::size_t n = batch.records.size();
  std::vector<obs::LineageKey>& keys = keys_scratch_;
  keys.clear();
  if (observer_) {
    const auto ts = static_cast<double>(t0);
    keys.reserve(n);
    for (const auto& r : batch.records) {
      keys.push_back(obs_key(r));
      observer_->lineage.stamp(obs_key(r), obs::PipelineStage::kLisForward, ts);
    }
    observer_->timeline.sample_changed(tl_buffer_, ts, 0.0);
  }
  // Ship without holding the buffer lock: the link may block when the ISM
  // is behind, and application threads must still be able to... wait.  They
  // cannot: PICL semantics are that the *application* pays for the flush
  // ("data collection stops" / processes are context-switched).  We keep the
  // lock to preserve exactly that cost model — record() blocks for the
  // duration of the flush, which is what the FOF/FAOF analysis measures.
  const SendOutcome out = tp_send(link_, std::move(batch));
  switch (out) {
    case SendOutcome::kDelivered:
      ++stats_.flushes;
      stats_.records_forwarded += n;
      PRISM_OBS_COUNT("core.lis.flushes");
      PRISM_OBS_COUNT_N("core.lis.records_forwarded", n);
      PRISM_OBS_COUNT("core.tp.batches_pushed");
      break;
    case SendOutcome::kClosed:
    case SendOutcome::kExhausted: {
      // The batch is destroyed, not forwarded: a closed link counted as a
      // forward used to make conserved() lie at shutdown.
      stats_.lost_send += n;
      PRISM_OBS_COUNT_N("core.lis.records_lost_send", n);
      PRISM_OBS_FLIGHT("send_loss",
                       out == SendOutcome::kClosed ? "link_closed"
                                                   : "retry_exhausted",
                       node_, n);
      if (observer_) {
        const auto tl = static_cast<double>(now_ns());
        const auto site = out == SendOutcome::kClosed
                              ? obs::LossSite::kTpSendFailed
                              : obs::LossSite::kRetryExhausted;
        for (const auto& k : keys) observer_->lineage.lose(k, site, tl);
      }
      break;
    }
    case SendOutcome::kCrashed:
      stats_.lost_dead += n;
      PRISM_OBS_COUNT_N("core.lis.records_lost_dead", n);
      PRISM_OBS_FLIGHT("dead_loss", "crash_in_flush", node_, n);
      if (observer_) {
        const auto tl = static_cast<double>(now_ns());
        for (const auto& k : keys)
          observer_->lineage.lose(k, obs::LossSite::kLisDead, tl);
      }
      break;
  }
  stats_.flush_time_ns += now_ns() - t0;
  (void)lk;
}

void BufferedLis::stop() {
  std::unique_lock lk(mu_);
  if (stopped_) return;
  flush_locked(lk);
  stopped_ = true;
}

LisStats BufferedLis::stats() const {
  std::lock_guard lk(mu_);
  LisStats out = stats_;
  out.buffered = buffer_.size();
  return out;
}

// ---------------------------------------------------------------- ForwardingLis

ForwardingLis::ForwardingLis(std::uint32_t node, DataLink& to_ism)
    : Lis(node), link_(to_ism) {}

void ForwardingLis::record(const trace::EventRecord& r) {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
  }
  const auto k = obs_key(r);
  if (dead()) {
    if (observer_) {
      const auto t = static_cast<double>(now_ns());
      if (obs_capture_) observer_->lineage.offer(k, t);
      observer_->lineage.lose(k, obs::LossSite::kLisDead, t);
    }
    std::lock_guard lk(mu_);
    ++stats_.dropped;
    PRISM_OBS_COUNT("core.lis.dropped");
    return;
  }
  DataBatch batch;
  batch.source_node = node_;
  batch.t_sent_ns = now_ns();
  // Single-record batch on recycled storage — the consumer (ISM) returns
  // the vector to the BatchArena, so the per-event send stops allocating
  // once the pool is warm.
  batch.records = BatchArena::instance().acquire_reserved(1);
  batch.records.push_back(r);
  const auto t_sent = static_cast<double>(batch.t_sent_ns);
  if (observer_ && obs_capture_) observer_->lineage.offer(k, t_sent);
  switch (tp_send(link_, std::move(batch))) {
    case SendOutcome::kDelivered: {
      if (observer_) {
        // Bufferless forwarding: enqueue and forward are the same system call.
        observer_->lineage.stamp(k, obs::PipelineStage::kLisEnqueue, t_sent);
        observer_->lineage.stamp(k, obs::PipelineStage::kLisForward, t_sent);
      }
      std::lock_guard lk(mu_);
      ++stats_.recorded;
      ++stats_.flushes;
      ++stats_.records_forwarded;
      PRISM_OBS_COUNT("core.lis.recorded");
      PRISM_OBS_COUNT("core.lis.records_forwarded");
      PRISM_OBS_COUNT("core.tp.batches_pushed");
      break;
    }
    case SendOutcome::kClosed: {
      // A refused record is a drop, full stop.  (This path used to bump
      // recorded up front AND dropped here, double-counting the record and
      // breaking conserved() whenever the link was closed.)
      if (observer_)
        observer_->lineage.lose(k, obs::LossSite::kTpBackpressure,
                                static_cast<double>(now_ns()));
      std::lock_guard lk(mu_);
      ++stats_.dropped;
      PRISM_OBS_COUNT("core.lis.dropped");
      break;
    }
    case SendOutcome::kExhausted: {
      if (observer_)
        observer_->lineage.lose(k, obs::LossSite::kRetryExhausted,
                                static_cast<double>(now_ns()));
      std::lock_guard lk(mu_);
      ++stats_.recorded;
      ++stats_.lost_send;
      PRISM_OBS_COUNT("core.lis.recorded");
      PRISM_OBS_COUNT("core.lis.records_lost_send");
      PRISM_OBS_FLIGHT("send_loss", "retry_exhausted", node_, 1);
      break;
    }
    case SendOutcome::kCrashed: {
      if (observer_)
        observer_->lineage.lose(k, obs::LossSite::kLisDead,
                                static_cast<double>(now_ns()));
      std::lock_guard lk(mu_);
      ++stats_.recorded;
      ++stats_.lost_dead;
      PRISM_OBS_COUNT("core.lis.recorded");
      PRISM_OBS_COUNT("core.lis.records_lost_dead");
      PRISM_OBS_FLIGHT("dead_loss", "crash_in_send", node_, 1);
      break;
    }
  }
}

void ForwardingLis::stop() {
  std::lock_guard lk(mu_);
  stopped_ = true;
}

LisStats ForwardingLis::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

// ---------------------------------------------------------------- DaemonLis

DaemonLis::DaemonLis(std::uint32_t node, std::uint32_t n_processes,
                     std::size_t pipe_capacity,
                     std::uint64_t sampling_period_ns, DataLink& to_ism,
                     ControlLink* control, bool block_on_full_pipe,
                     ProbeRegistry* probes)
    : Lis(node),
      link_(to_ism),
      control_(control),
      probes_(probes),
      block_on_full_pipe_(block_on_full_pipe),
      sampling_period_ns_(sampling_period_ns),
      tl_backlog_("lis" + std::to_string(node) + ".pipe_backlog") {
  if (n_processes == 0) throw std::invalid_argument("DaemonLis: 0 processes");
  if (sampling_period_ns == 0)
    throw std::invalid_argument("DaemonLis: zero sampling period");
  pipes_.reserve(n_processes);
  for (std::uint32_t i = 0; i < n_processes; ++i)
    pipes_.push_back(
        std::make_unique<Channel<trace::EventRecord>>(pipe_capacity));
  running_.store(true);
  daemon_ = std::thread([this] { daemon_main(); });
}

DaemonLis::~DaemonLis() { stop(); }

void DaemonLis::record(const trace::EventRecord& r) {
  if (r.process >= pipes_.size())
    throw std::out_of_range("DaemonLis::record: unknown process");
  if (dead()) {
    // The daemon process is gone; nothing will ever drain the pipes again.
    if (observer_) {
      const auto k = obs_key(r);
      const auto t = static_cast<double>(now_ns());
      if (obs_capture_) observer_->lineage.offer(k, t);
      observer_->lineage.lose(k, obs::LossSite::kLisDead, t);
    }
    std::lock_guard lk(mu_);
    ++stats_.dropped;
    PRISM_OBS_COUNT("core.lis.dropped");
    return;
  }
  auto& pipe = *pipes_[r.process];
  bool ok;
  if (block_on_full_pipe_) {
    ok = pipe.push(r);  // may block: the §3.2.3 application stall
  } else {
    ok = pipe.try_push(r);
  }
  if (observer_) {
    const auto k = obs_key(r);
    const auto t = static_cast<double>(now_ns());
    if (obs_capture_) observer_->lineage.offer(k, t);
    if (ok) {
      observer_->lineage.stamp(k, obs::PipelineStage::kLisEnqueue, t);
    } else {
      observer_->lineage.lose(k, obs::LossSite::kLisPipe, t);
    }
    observer_->timeline.sample_changed(tl_backlog_, t,
                                       static_cast<double>(pipe.size()));
  }
  std::lock_guard lk(mu_);
  if (ok) {
    ++stats_.recorded;
    PRISM_OBS_COUNT("core.lis.recorded");
  } else {
    ++stats_.dropped;
    PRISM_OBS_COUNT("core.lis.dropped");
  }
}

void DaemonLis::daemon_main() {
  while (running_.load(std::memory_order_relaxed)) {
    const auto period = std::chrono::nanoseconds(
        sampling_period_ns_.load(std::memory_order_relaxed));
    std::this_thread::sleep_for(period);
    if (auto* inj = fault_.load(std::memory_order_acquire)) {
      const auto f = inj->consult(fault::FaultSite::kLisTick, node_);
      if (f.kind == fault::FaultKind::kCrash) {
        die();
        return;  // no final sweep: the daemon process no longer exists
      }
      if (f.kind == fault::FaultKind::kStall ||
          f.kind == fault::FaultKind::kSlowConsumer)
        fault::sleep_ns(f.stall_ns);
    }
    if (control_) {
      while (auto msg = control_->try_pop()) {
        if (msg->kind == ControlKind::kSetSamplingPeriod) {
          set_sampling_period_ns(static_cast<std::uint64_t>(msg->value));
        } else if (msg->kind == ControlKind::kShutdown) {
          running_.store(false);
        } else if (probes_ &&
                   (msg->kind == ControlKind::kEnableInstrumentation ||
                    msg->kind == ControlKind::kDisableInstrumentation)) {
          probes_->apply(*msg);
        }
      }
    }
    drain_once();
    if (dead()) return;  // crashed inside the drain's TP send
  }
  drain_once();  // final sweep
}

void DaemonLis::die() {
  if (!dead_.exchange(true, std::memory_order_relaxed))
    PRISM_OBS_FLIGHT("lis_crash", "daemon_die", node_, 1);
  running_.store(false, std::memory_order_relaxed);
  // The daemon process is gone and its pipes die with it: close them so
  // blocked application writers wake (their pushes fail and count as drops),
  // and account every record still queued as a lis_dead loss so the
  // conservation ledger closes.
  std::uint64_t orphans = 0;
  const auto t = static_cast<double>(now_ns());
  for (auto& p : pipes_) {
    p->close();
    while (auto r = p->try_pop()) {
      ++orphans;
      if (observer_)
        observer_->lineage.lose(obs_key(*r), obs::LossSite::kLisDead, t);
    }
  }
  if (orphans > 0)
    PRISM_OBS_FLIGHT("dead_loss", "daemon_orphans", node_, orphans);
  std::lock_guard lk(mu_);
  stats_.lost_dead += orphans;
  PRISM_OBS_COUNT_N("core.lis.records_lost_dead", orphans);
}

void DaemonLis::drain_once() {
  PRISM_OBS_SPAN("lis.daemon_drain", "core");
  const std::uint64_t t0 = now_ns();
  DataBatch batch;
  batch.source_node = node_;
  batch.records = BatchArena::instance().acquire_reserved(pipes_.size());
  // "The local daemon collects the instrumentation data samples from the
  // head of each buffer, one at a time" (§3.2.2) — round-robin over pipe
  // heads until all pipes are momentarily empty.
  bool any = true;
  while (any) {
    any = false;
    for (auto& pipe : pipes_) {
      if (auto r = pipe->try_pop()) {
        batch.records.push_back(*r);
        any = true;
      }
    }
  }
  if (!batch.records.empty()) {
    const std::size_t n = batch.records.size();
    batch.t_sent_ns = now_ns();
    std::vector<obs::LineageKey> keys;
    if (observer_) {
      const auto ts = static_cast<double>(batch.t_sent_ns);
      keys.reserve(n);
      for (const auto& r : batch.records) {
        keys.push_back(obs_key(r));
        observer_->lineage.stamp(obs_key(r), obs::PipelineStage::kLisForward,
                                 ts);
      }
      observer_->timeline.sample_changed(tl_backlog_, ts, 0.0);
    }
    const SendOutcome out = tp_send(link_, std::move(batch));
    switch (out) {
      case SendOutcome::kDelivered: {
        std::lock_guard lk(mu_);
        ++stats_.flushes;
        stats_.records_forwarded += n;
        PRISM_OBS_COUNT("core.lis.flushes");
        PRISM_OBS_COUNT_N("core.lis.records_forwarded", n);
        PRISM_OBS_COUNT("core.tp.batches_pushed");
        break;
      }
      case SendOutcome::kClosed:
      case SendOutcome::kExhausted: {
        if (observer_) {
          const auto tl = static_cast<double>(now_ns());
          const auto site = out == SendOutcome::kClosed
                                ? obs::LossSite::kTpSendFailed
                                : obs::LossSite::kRetryExhausted;
          for (const auto& k : keys) observer_->lineage.lose(k, site, tl);
        }
        std::lock_guard lk(mu_);
        stats_.lost_send += n;
        PRISM_OBS_COUNT_N("core.lis.records_lost_send", n);
        PRISM_OBS_FLIGHT("send_loss",
                         out == SendOutcome::kClosed ? "link_closed"
                                                     : "retry_exhausted",
                         node_, n);
        break;
      }
      case SendOutcome::kCrashed: {
        if (observer_) {
          const auto tl = static_cast<double>(now_ns());
          for (const auto& k : keys)
            observer_->lineage.lose(k, obs::LossSite::kLisDead, tl);
        }
        {
          std::lock_guard lk(mu_);
          stats_.lost_dead += n;
          PRISM_OBS_COUNT_N("core.lis.records_lost_dead", n);
          PRISM_OBS_FLIGHT("dead_loss", "crash_in_drain", node_, n);
        }
        die();  // the whole component is gone — drain pipe residue too
        break;
      }
    }
  } else {
    // Idle tick: hand the untouched storage straight back to the pool.
    BatchArena::instance().release(std::move(batch.records));
  }
  daemon_busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
}

void DaemonLis::flush() {
  if (!dead()) drain_once();
}

void DaemonLis::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    // Already stopped — or died, in which case die() closed the pipes;
    // close() is idempotent, so just make sure and join.
    for (auto& p : pipes_) p->close();
    if (daemon_.joinable()) daemon_.join();
    return;
  }
  for (auto& p : pipes_) p->close();
  if (daemon_.joinable()) daemon_.join();
}

LisStats DaemonLis::stats() const {
  std::lock_guard lk(mu_);
  LisStats out = stats_;
  for (const auto& p : pipes_) out.buffered += p->size();
  return out;
}

std::uint64_t DaemonLis::app_block_time_ns() const {
  std::uint64_t total = 0;
  for (const auto& p : pipes_) total += p->stats().producer_block_ns;
  return total;
}

}  // namespace prism::core
