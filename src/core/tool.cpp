#include "core/tool.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

namespace prism::core {

// ---------------------------------------------------------------- StatsTool

void StatsTool::consume(const trace::EventRecord& r) {
  std::lock_guard lk(mu_);
  ++total_;
  ++by_kind_[r.kind];
  ++by_node_[r.node];
  if (r.kind == trace::EventKind::kSample)
    metrics_[r.tag].add(trace::unpack_double(r.payload));
}

std::uint64_t StatsTool::total() const {
  std::lock_guard lk(mu_);
  return total_;
}

std::uint64_t StatsTool::count(trace::EventKind k) const {
  std::lock_guard lk(mu_);
  auto it = by_kind_.find(k);
  return it == by_kind_.end() ? 0 : it->second;
}

std::uint64_t StatsTool::count_for_node(std::uint32_t node) const {
  std::lock_guard lk(mu_);
  auto it = by_node_.find(node);
  return it == by_node_.end() ? 0 : it->second;
}

stats::Summary StatsTool::metric(std::uint16_t tag) const {
  std::lock_guard lk(mu_);
  auto it = metrics_.find(tag);
  return it == metrics_.end() ? stats::Summary{} : it->second;
}

void StatsTool::report(std::ostream& os) const {
  std::lock_guard lk(mu_);
  os << "StatsTool: " << total_ << " records\n";
  for (auto& [kind, n] : by_kind_)
    os << "  " << to_string(kind) << ": " << n << "\n";
  for (auto& [node, n] : by_node_) os << "  node " << node << ": " << n << "\n";
  for (auto& [tag, s] : metrics_)
    os << "  metric " << tag << ": mean=" << s.mean() << " n=" << s.count()
       << "\n";
}

// ---------------------------------------------------------------- TimelineTool

TimelineTool::TimelineTool(std::size_t max_records) : max_(max_records) {
  records_.reserve(std::min<std::size_t>(max_records, 1024));
}

void TimelineTool::consume(const trace::EventRecord& r) {
  std::lock_guard lk(mu_);
  ++seen_;
  if (records_.size() < max_) records_.push_back(r);
}

std::string TimelineTool::render(std::size_t width) const {
  std::lock_guard lk(mu_);
  if (records_.empty()) return "(empty timeline)\n";
  std::uint64_t t0 = UINT64_MAX, t1 = 0;
  std::uint32_t max_node = 0;
  for (const auto& r : records_) {
    t0 = std::min(t0, r.timestamp);
    t1 = std::max(t1, r.timestamp);
    max_node = std::max(max_node, r.node);
  }
  const double span = t1 > t0 ? static_cast<double>(t1 - t0) : 1.0;
  std::vector<std::string> lanes(max_node + 1, std::string(width, '.'));
  for (const auto& r : records_) {
    auto col = static_cast<std::size_t>(
        static_cast<double>(r.timestamp - t0) / span * (width - 1));
    char glyph = '*';
    switch (r.kind) {
      case trace::EventKind::kSend: glyph = 's'; break;
      case trace::EventKind::kRecv: glyph = 'r'; break;
      case trace::EventKind::kSample: glyph = '^'; break;
      case trace::EventKind::kFlushBegin:
      case trace::EventKind::kFlushEnd: glyph = 'F'; break;
      case trace::EventKind::kBarrier: glyph = '|'; break;
      default: break;
    }
    lanes[r.node][col] = glyph;
  }
  std::ostringstream os;
  os << "timeline [" << t0 << " ns .. " << t1 << " ns], " << records_.size()
     << " of " << seen_ << " records\n";
  for (std::size_t n = 0; n < lanes.size(); ++n)
    os << "node " << n << " |" << lanes[n] << "|\n";
  return os.str();
}

// ---------------------------------------------------------------- TraceFileTool

TraceFileTool::TraceFileTool(const std::filesystem::path& path)
    : writer_(path) {}

void TraceFileTool::consume(const trace::EventRecord& r) {
  std::lock_guard lk(mu_);
  writer_.write(r);
}

void TraceFileTool::finish() {
  std::lock_guard lk(mu_);
  writer_.close();
}

std::uint64_t TraceFileTool::written() const {
  std::lock_guard lk(mu_);
  return writer_.records_written();
}

// ---------------------------------------------------------------- ThresholdWatchTool

ThresholdWatchTool::ThresholdWatchTool(std::uint16_t tag, double threshold,
                                       Trigger on_cross)
    : tag_(tag), threshold_(threshold), on_cross_(std::move(on_cross)) {
  if (!on_cross_) throw std::invalid_argument("ThresholdWatchTool: null trigger");
}

void ThresholdWatchTool::consume(const trace::EventRecord& r) {
  if (r.kind != trace::EventKind::kSample || r.tag != tag_) return;
  const double v = trace::unpack_double(r.payload);
  if (v > threshold_) {
    ++triggers_;
    on_cross_(r, v);
  }
}

}  // namespace prism::core
