// Tools — the consumers of processed instrumentation data (§2.3).
//
// "Tools receive instrumentation data from ISM output buffers or a mass
// storage device, depending on on-line or off-line usage."  A Tool is a
// sink with a lifecycle; the bundled implementations cover the four tool
// types of Fig. 3 (performance evaluation, debugging, steering,
// visualization) in miniature so examples and tests have real consumers.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "stats/summary.hpp"
#include "trace/file.hpp"
#include "trace/record.hpp"

namespace prism::core {

class Tool {
 public:
  virtual ~Tool() = default;
  virtual std::string_view name() const = 0;
  /// Consumes one processed (causally ordered, logically stamped) record.
  /// Called from the ISM's dispatch thread.
  virtual void consume(const trace::EventRecord& r) = 0;
  /// Called once when the environment shuts down.
  virtual void finish() {}
};

/// Performance-evaluation tool: per-kind and per-node event counts plus
/// metric summaries for kSample records (tag -> summary of values).
class StatsTool final : public Tool {
 public:
  std::string_view name() const override { return "stats"; }
  void consume(const trace::EventRecord& r) override;
  void finish() override {}

  std::uint64_t total() const;
  std::uint64_t count(trace::EventKind k) const;
  std::uint64_t count_for_node(std::uint32_t node) const;
  /// Summary of sampled values for a metric tag.
  stats::Summary metric(std::uint16_t tag) const;
  /// Renders a report.
  void report(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<trace::EventKind, std::uint64_t> by_kind_;
  std::map<std::uint32_t, std::uint64_t> by_node_;
  std::map<std::uint16_t, stats::Summary> metrics_;
  std::uint64_t total_ = 0;
};

/// Visualization stand-in: retains up to `max_records` ordered records and
/// renders an ASCII space-time timeline (one lane per node).
class TimelineTool final : public Tool {
 public:
  explicit TimelineTool(std::size_t max_records = 4096);
  std::string_view name() const override { return "timeline"; }
  void consume(const trace::EventRecord& r) override;

  const std::vector<trace::EventRecord>& records() const { return records_; }
  /// ASCII rendering: `width` columns spanning the observed time range.
  std::string render(std::size_t width = 72) const;

 private:
  mutable std::mutex mu_;
  std::size_t max_;
  std::vector<trace::EventRecord> records_;
  std::uint64_t seen_ = 0;
};

/// Off-line consumer: appends every record to a trace file.
class TraceFileTool final : public Tool {
 public:
  explicit TraceFileTool(const std::filesystem::path& path);
  std::string_view name() const override { return "trace_file"; }
  void consume(const trace::EventRecord& r) override;
  void finish() override;
  std::uint64_t written() const;

 private:
  mutable std::mutex mu_;
  trace::TraceFileWriter writer_;
};

/// Debugging/steering stand-in: watches a metric tag and invokes a callback
/// when its sampled value crosses a threshold (a steering trigger).
class ThresholdWatchTool final : public Tool {
 public:
  using Trigger = std::function<void(const trace::EventRecord&, double)>;
  ThresholdWatchTool(std::uint16_t tag, double threshold, Trigger on_cross);
  std::string_view name() const override { return "threshold_watch"; }
  void consume(const trace::EventRecord& r) override;
  std::uint64_t triggers() const { return triggers_.load(); }

 private:
  std::uint16_t tag_;
  double threshold_;
  Trigger on_cross_;
  std::atomic<std::uint64_t> triggers_{0};
};

}  // namespace prism::core
