// A shared-memory transfer-protocol backend — the third real TP flavor
// (§2.2.3 leaves room for "custom protocols"; DeWiz-style decoupled event
// modules over a shared-memory data plane are the precedent).  Where the
// socket backend pays a syscall and two kernel copies per flush, the shm
// backend moves record batches through lock-free SPSC rings (shm_ring.hpp)
// in MAP_SHARED segments: the steady-state data path is two user-space
// memcpys and two release stores — zero syscalls, zero kernel copies, zero
// mallocs on the producer side (the consumer's batch storage is recycled
// through io_loop's BatchArena).
//
// Topology mirrors socket_link.hpp on purpose: per data link, a *pump*
// thread drains the existing in-process ingress DataLink and writes wire
// frames (the same untrusted 24-byte header + raw EventRecords format as
// the pipe and socket links) into that link's ring; one shared *reader*
// thread polls every ring round-robin — spinning briefly, then yielding,
// then sleeping, so an idle plane costs nothing — validates each header
// before allocating anything from it, and delivers batches into per-link
// bounded egress DataLinks consumed via receive_link().  Backpressure is
// preserved end to end: a full egress blocks the reader, the ring fills,
// the pump parks, the ingress link fills, and the LIS blocks — the §3.2.3
// bottleneck chain over shared memory.
//
// Failure semantics are the socket link's: a frame that dies mid-write
// (injected kPartialFrame) poisons the ring and latches stream_corrupt();
// bad magic or an oversized record_count hard-fails the reader side.  The
// pump keeps the same in-transit ledger (unacked_) of frame record
// identities, pruned against the reader's delivered count; at stream
// teardown every unconfirmed frame's records are attributed as lost, which
// keeps `admitted == completed + lost + in_flight` exact under chaos.
// Fault sites: kShmPush per send attempt (retryable per RetryPolicy),
// kShmFrame per frame (corrupt-magic / partial-frame), lanes keyed on the
// batch's source node for cross-transport ledger equivalence.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/io_loop.hpp"
#include "core/shm_ring.hpp"
#include "core/transfer_protocol.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism::core {

/// RAII anonymous MAP_SHARED mapping — shareable across fork(), so the ring
/// torture tests (and a future multi-process tier) can put a producer and a
/// consumer in different address spaces.  Throws std::system_error on mmap
/// failure.
class MappedSegment {
 public:
  explicit MappedSegment(std::size_t bytes);
  ~MappedSegment();
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  void* data() const { return mem_; }
  std::size_t size() const { return bytes_; }

 private:
  void* mem_ = nullptr;
  std::size_t bytes_ = 0;
};

/// The producer side of one shm link: drains an ingress DataLink, frames
/// batches into the ring, and owns the writer half of the loss ledger.
/// Constructed only by ShmTransport.
class ShmLink {
 public:
  ~ShmLink();
  ShmLink(const ShmLink&) = delete;
  ShmLink& operator=(const ShmLink&) = delete;

  /// Marks the producer done (kProducerDone); the reader drains what is in
  /// the ring and then sees EOF.  Idempotent.  The pump keeps draining the
  /// ingress link afterwards, attributing each further batch as a
  /// tp_send_failed loss (parity with a closed socket writer).
  void close_writer();

  /// Test hook: writes raw bytes into the ring, bypassing framing — lets
  /// corruption tests place arbitrary garbage in front of the reader.
  /// Returns false when the bytes do not fit or the writer is closed.
  bool inject_raw(const void* data, std::size_t len);

  /// Attaches the fault plane (may be null).  kShmPush is consulted once
  /// per send attempt (kSendFail retried per `retry`, stalls applied);
  /// kShmFrame once per frame (kFrameCorrupt flips the magic in the ring,
  /// kPartialFrame truncates the frame and poisons the stream).  The lane
  /// node is the batch's source node, mirroring the socket link.
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

  /// Attaches the observability sink (may be null).  Every record this
  /// link destroys is attributed here.  Call before traffic.
  void set_observer(obs::PipelineObserver* o) {
    observer_.store(o, std::memory_order_release);
  }

  /// Frames fully published into the ring (excludes destroyed frames).
  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t bytes_sent() const { return bytes_.load(); }
  /// Frames the reader parsed and delivered into the egress link.
  std::uint64_t frames_delivered() const { return delivered_.load(); }
  /// Frames the reader rejected (bad magic, oversized count, truncation).
  std::uint64_t frames_corrupt() const { return frames_corrupt_.load(); }
  /// Frames the writer destroyed (injected corruption or truncation).
  std::uint64_t frames_aborted() const { return frames_aborted_.load(); }
  /// Frames published but never delivered (stranded in the ring when the
  /// stream died); attributed lost at teardown.
  std::uint64_t frames_undelivered() const {
    return frames_undelivered_.load();
  }
  /// Failed send attempts, injected and organic.
  std::uint64_t send_failures() const { return send_failures_.load(); }
  /// Records this link destroyed and attributed (all loss sites).
  std::uint64_t records_lost() const { return records_lost_.load(); }
  /// Ring-full park episodes on the producer side (backpressure evidence).
  std::uint64_t ring_full_waits() const { return ring_full_waits_.load(); }
  /// Latched once either end declared the byte stream desynchronized.
  bool stream_corrupt() const { return stream_corrupt_.load(); }

 private:
  friend class ShmTransport;

  ShmLink(std::size_t index, DataLink& ingress, DataLink& egress,
          ShmRing ring, const ShmOptions& opts);
  void start();

  void pump_main();
  void handle_batch(DataBatch&& batch);
  /// Parks until `len` bytes fit in the ring.  Returns false when the
  /// consumer is gone or the stream died (write_mu_ held).
  bool wait_for_space_locked(std::size_t len);
  void prune_acked_locked();
  void close_writer_locked();
  /// Mid-frame failure: poison + latch (write_mu_ held).
  void abort_stream_locked();
  obs::PipelineObserver* observer() const {
    return observer_.load(std::memory_order_acquire);
  }
  void lose_keys(const std::vector<obs::LineageKey>& keys,
                 std::uint64_t count, obs::LossSite site);
  void lose_batch(const DataBatch& batch, obs::LossSite site);

  // Reader-side entry points (called by ShmTransport's reader thread).
  void on_frame_delivered() {
    delivered_.fetch_add(1, std::memory_order_release);
  }
  void on_reader_corrupt() {
    frames_corrupt_.fetch_add(1, std::memory_order_relaxed);
    stream_corrupt_.store(true, std::memory_order_relaxed);
  }
  /// Stream over (EOF, corruption, or abandoned teardown): attribute every
  /// published frame the reader never confirmed.  The reader sets
  /// kConsumerGone before calling, so a concurrent pump fails its next
  /// space check instead of racing this ledger.
  void reconcile_undelivered();

  const std::size_t index_;
  DataLink& ingress_;
  DataLink& egress_;
  const ShmOptions opts_;

  std::mutex write_mu_;
  ShmRing ring_;                            // producer view (write_mu_)
  std::deque<std::pair<std::vector<obs::LineageKey>, std::uint64_t>>
      unacked_;                             // guarded by write_mu_
  std::uint64_t acked_ = 0;                 // guarded by write_mu_
  fault::FaultInjector* fault_ = nullptr;   // guarded by write_mu_
  fault::RetryPolicy retry_;                // guarded by write_mu_
  stats::Rng backoff_rng_{0};               // guarded by write_mu_
  std::atomic<obs::PipelineObserver*> observer_{nullptr};

  std::thread pump_;
  std::atomic<bool> writer_closed_{false};
  std::atomic<bool> stream_corrupt_{false};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> frames_corrupt_{0};
  std::atomic<std::uint64_t> frames_aborted_{0};
  std::atomic<std::uint64_t> frames_undelivered_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> records_lost_{0};
  std::atomic<std::uint64_t> ring_full_waits_{0};
};

/// The shared-memory data plane of one TransferProtocol: owns the mapped
/// segments, the egress links, the per-link pumps, and the single reader
/// thread that polls every ring.
class ShmTransport {
 public:
  /// Builds one ring segment per data link of `tp` and starts the reader +
  /// pumps.  `tp` must outlive this object.  Throws std::invalid_argument
  /// on a ring capacity that is zero or not a power of two, or one too
  /// small to ever hold a single-record frame.
  ShmTransport(TransferProtocol& tp, ShmOptions opts);
  ~ShmTransport();
  ShmTransport(const ShmTransport&) = delete;
  ShmTransport& operator=(const ShmTransport&) = delete;

  std::size_t link_count() const { return links_.size(); }
  ShmLink& link(std::size_t index) { return *links_.at(index); }
  /// The bounded buffer the ISM consumes for data link `index`.
  DataLink& egress(std::size_t index) { return *egress_.at(index); }
  const ShmOptions& options() const { return opts_; }

  /// Forwarded to every link.  Call before traffic for deterministic
  /// fault lanes (kShmPush / kShmFrame, node = batch source).
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});
  void set_observer(obs::PipelineObserver* o);

  /// Blocks until every pump has drained its (closed) ingress link and the
  /// reader has retired every ring — after this, all loss accounting is
  /// final and the ledgers stop moving.  Requires the ingress links closed
  /// first, and a consumer still draining the egress links while healthy
  /// streams flush (the ISM shutdown path provides both).  Idempotent.
  void quiesce();

  /// Sum of records destroyed and attributed on the shm plane, all links.
  std::uint64_t records_lost_total() const;
  std::uint64_t frames_delivered_total() const;

 private:
  /// Reader-side reassembly state of one ring.
  struct Rx {
    ShmRing ring;  ///< consumer view
    std::size_t link = 0;
    bool done = false;
    bool in_payload = false;
    FrameHeader hdr;
    DataBatch batch;
  };

  void reader_main();
  /// Consumes whatever the ring holds; returns true when progress was made.
  bool service(Rx& rx);
  void deliver(Rx& rx);
  void finish(Rx& rx, bool corrupt);

  ShmOptions opts_;
  std::vector<std::unique_ptr<MappedSegment>> segments_;
  std::vector<std::unique_ptr<DataLink>> egress_;
  std::vector<std::unique_ptr<ShmLink>> links_;
  std::vector<Rx> rxs_;  // reader thread only (after construction)
  std::thread reader_;
};

}  // namespace prism::core
