#include "core/probe_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace prism::core {

void ProbeRegistry::add(Probe* probe) {
  if (!probe) throw std::invalid_argument("ProbeRegistry: null probe");
  std::lock_guard lk(mu_);
  probes_.emplace(probe->id(), probe);
}

void ProbeRegistry::remove(Probe* probe) {
  if (!probe) return;
  std::lock_guard lk(mu_);
  auto [lo, hi] = probes_.equal_range(probe->id());
  for (auto it = lo; it != hi; ++it) {
    if (it->second == probe) {
      probes_.erase(it);
      return;
    }
  }
}

std::size_t ProbeRegistry::enable(std::uint16_t id) {
  std::lock_guard lk(mu_);
  auto [lo, hi] = probes_.equal_range(id);
  std::size_t n = 0;
  for (auto it = lo; it != hi; ++it, ++n) it->second->enable();
  return n;
}

std::size_t ProbeRegistry::disable(std::uint16_t id) {
  std::lock_guard lk(mu_);
  auto [lo, hi] = probes_.equal_range(id);
  std::size_t n = 0;
  for (auto it = lo; it != hi; ++it, ++n) it->second->disable();
  return n;
}

void ProbeRegistry::apply(const ControlMessage& m) {
  const auto id = static_cast<std::uint16_t>(m.value);
  if (m.kind == ControlKind::kEnableInstrumentation) {
    enable(id);
  } else if (m.kind == ControlKind::kDisableInstrumentation) {
    disable(id);
  }
}

std::size_t ProbeRegistry::size() const {
  std::lock_guard lk(mu_);
  return probes_.size();
}

std::size_t ProbeRegistry::enabled_count() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (auto& [id, p] : probes_)
    if (p->enabled()) ++n;
  return n;
}

std::vector<std::uint16_t> ProbeRegistry::ids() const {
  std::lock_guard lk(mu_);
  std::vector<std::uint16_t> out;
  for (auto& [id, p] : probes_) out.push_back(id);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace prism::core
