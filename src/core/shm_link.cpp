#include "core/shm_link.hpp"

#include <sys/mman.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>

#include "core/clock.hpp"
#include "obs/live/flight.hpp"
#include "obs/prof/prof.hpp"

namespace prism::core {

// -------------------------------------------------------------- MappedSegment

MappedSegment::MappedSegment(std::size_t bytes) : bytes_(bytes) {
  // Anonymous + MAP_SHARED: no file, but the pages are genuinely shared with
  // any child forked after this, which is what the cross-process ring tests
  // rely on.  In-process use works identically.
  mem_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem_ == MAP_FAILED) {
    mem_ = nullptr;
    throw std::system_error(errno, std::generic_category(), "mmap");
  }
}

MappedSegment::~MappedSegment() {
  if (mem_ != nullptr) ::munmap(mem_, bytes_);
}

// -------------------------------------------------------------------- ShmLink

ShmLink::ShmLink(std::size_t index, DataLink& ingress, DataLink& egress,
                 ShmRing ring, const ShmOptions& opts)
    : index_(index),
      ingress_(ingress),
      egress_(egress),
      opts_(opts),
      ring_(ring) {}

ShmLink::~ShmLink() {
  // The owner closes the ingress link before destroying us, which is what
  // lets the pump drain and exit.
  if (pump_.joinable()) pump_.join();
  std::lock_guard lk(write_mu_);
  close_writer_locked();
}

void ShmLink::start() {
  pump_ = std::thread([this] { pump_main(); });
}

void ShmLink::set_fault(fault::FaultInjector* f, fault::RetryPolicy retry) {
  std::lock_guard lk(write_mu_);
  fault_ = f;
  retry_ = retry;
  backoff_rng_ = stats::Rng(
      stats::Rng::hash_seed(f ? f->seed() : 0, 0x5bb0ull + index_));
}

void ShmLink::lose_keys(const std::vector<obs::LineageKey>& keys,
                        std::uint64_t count, obs::LossSite site) {
  records_lost_.fetch_add(count, std::memory_order_relaxed);
  PRISM_OBS_FLIGHT("wire_loss", obs::to_string(site), index_, count);
  auto* o = observer();
  if (!o) return;
  const auto t = static_cast<double>(now_ns());
  for (const auto k : keys) o->lineage.lose(k, site, t);
}

void ShmLink::lose_batch(const DataBatch& batch, obs::LossSite site) {
  records_lost_.fetch_add(batch.records.size(), std::memory_order_relaxed);
  PRISM_OBS_FLIGHT("wire_loss", obs::to_string(site), index_,
                   batch.records.size());
  auto* o = observer();
  if (!o) return;
  const auto t = static_cast<double>(now_ns());
  for (const auto& r : batch.records)
    o->lineage.lose(obs::lineage_key(r.node, r.process, r.seq), site, t);
}

void ShmLink::close_writer_locked() {
  // kProducerDone is released after every byte this writer published, so a
  // reader that observes the flag and then drains sees the full stream.
  if (!writer_closed_.exchange(true)) ring_.set_flags(ShmRing::kProducerDone);
}

void ShmLink::abort_stream_locked() {
  if (!stream_corrupt_.exchange(true, std::memory_order_relaxed))
    PRISM_OBS_FLIGHT("stream_corrupt", "shm_ring", index_, 0);
  ring_.set_flags(ShmRing::kPoisoned);
  close_writer_locked();
}

void ShmLink::prune_acked_locked() {
  const std::uint64_t d = delivered_.load(std::memory_order_acquire);
  while (acked_ < d && !unacked_.empty()) {
    unacked_.pop_front();
    ++acked_;
  }
}

bool ShmLink::wait_for_space_locked(std::size_t len) {
  if (ring_.free_bytes() >= len) return true;
  ring_full_waits_.fetch_add(1, std::memory_order_relaxed);
  PRISM_OBS_FLIGHT("backpressure", "shm_ring_full", index_, 0);
  std::size_t rounds = 0;
  for (;;) {
    // A gone or poisoned ring frees no further space; bail instead of
    // spinning forever.  (The reader sets kConsumerGone *before* it stops
    // consuming for good, so this check is what unblocks a parked pump.)
    if (ring_.flags() & (ShmRing::kConsumerGone | ShmRing::kPoisoned))
      return false;
    if (ring_.free_bytes() >= len) return true;
    // The consumer is strictly draining: park progressively (yield first,
    // then sleep) — the wait is genuine backpressure, not a spin race.
    if (++rounds < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ShmLink::handle_batch(DataBatch&& batch) {
  std::lock_guard lk(write_mu_);
  prune_acked_locked();
  if (writer_closed_.load() || stream_corrupt_.load()) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    lose_batch(batch, obs::LossSite::kTpSendFailed);
    return;
  }

  // Push-attempt faults: injected transient failures happen before any byte
  // enters the ring, so they are cleanly retryable.
  std::uint32_t attempt = 0;
  for (;;) {
    if (!fault_) break;
    const auto f =
        fault_->consult(fault::FaultSite::kShmPush, batch.source_node);
    if (f.kind == fault::FaultKind::kStall ||
        f.kind == fault::FaultKind::kSlowConsumer)
      fault::sleep_ns(f.stall_ns);
    if (f.kind != fault::FaultKind::kSendFail) break;
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++attempt >= retry_.max_attempts) {
      lose_batch(batch, obs::LossSite::kRetryExhausted);
      return;
    }
    fault::sleep_ns(retry_.backoff_ns(attempt, backoff_rng_));
  }

  FrameHeader hdr;
  hdr.source_node = batch.source_node;
  hdr.t_sent_ns = batch.t_sent_ns;
  hdr.record_count = batch.records.size();
  const std::size_t payload =
      batch.records.size() * sizeof(trace::EventRecord);

  if (fault_) {
    const auto f =
        fault_->consult(fault::FaultSite::kShmFrame, batch.source_node);
    if (f.kind == fault::FaultKind::kPartialFrame) {
      // The writer dies mid-frame: the header and half the payload are
      // published, then the ring is poisoned — the reader finds a valid
      // header whose payload never completes.
      const std::size_t half = payload / 2;
      if (ring_.free_bytes() >= sizeof hdr + half) {
        ring_.try_write2(&hdr, sizeof hdr, batch.records.data(), half);
        bytes_.fetch_add(sizeof hdr + half, std::memory_order_relaxed);
      }
      frames_aborted_.fetch_add(1, std::memory_order_relaxed);
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      lose_batch(batch, obs::LossSite::kFrameCorrupt);
      abort_stream_locked();
      return;
    }
    if (f.kind == fault::FaultKind::kFrameCorrupt) hdr.magic ^= 0xFFu;
  }

  const std::size_t len = sizeof hdr + payload;
  if (len > ring_.capacity() || !wait_for_space_locked(len)) {
    // Oversized for this ring, or the consumer vanished while we waited:
    // the frame never entered the ring, so the stream itself stays sound —
    // a clean per-frame send failure, mirroring EPIPE at a frame boundary.
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    lose_batch(batch, obs::LossSite::kTpSendFailed);
    return;
  }

  if (hdr.magic != kFrameMagic) {
    // Injected corrupt-magic frame: it ships whole but the reader must
    // detect it; the records are gone either way.  Accounted here, where
    // their identity is still known, and excluded from the unacked ledger.
    frames_aborted_.fetch_add(1, std::memory_order_relaxed);
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    lose_batch(batch, obs::LossSite::kFrameCorrupt);
  } else {
    // Ledger entry goes in before the frame is published (all under
    // write_mu_): the reader can never deliver a frame the ledger has not
    // seen.  The records' identities survive here even though the bytes are
    // about to leave this thread's ownership.
    std::vector<obs::LineageKey> keys;
    if (observer()) {
      keys.reserve(batch.records.size());
      for (const auto& r : batch.records)
        keys.push_back(obs::lineage_key(r.node, r.process, r.seq));
    }
    unacked_.emplace_back(std::move(keys), batch.records.size());
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  // Zero-copy publish: header and records land directly in the mapped
  // segment, one release store makes the whole frame visible.
  ring_.try_write2(&hdr, sizeof hdr,
                   batch.records.empty() ? nullptr : batch.records.data(),
                   payload);
  bytes_.fetch_add(len, std::memory_order_relaxed);
}

void ShmLink::pump_main() {
  // Busy/idle split for the live tier's obs report: waiting in pop() —
  // ingress empty or ingress lock contended — is idle; serializing and
  // ring pushes (including ring-full parks, which burn the pump's budget)
  // are busy.
  obs::prof::WorkerClock clock("io.shm.pump");
  for (;;) {
    const std::uint64_t t_park = obs::prof::prof_now_ns();
    std::optional<Message> msg = ingress_.pop();
    clock.add_idle_ns(obs::prof::prof_now_ns() - t_park);
    if (!msg) break;  // ingress closed and drained
    if (auto* batch = std::get_if<DataBatch>(&*msg)) {
      handle_batch(std::move(*batch));
    } else {
      // Control messages never ride the data ring: the control plane is
      // in-process (§2.2.3 allows direct ISM<->LIS control), so bypass
      // straight into the egress buffer.  FIFO with the ring's data frames
      // is not required for control (same contract as the socket link).
      egress_.push(std::move(*msg));
    }
  }
  std::lock_guard lk(write_mu_);
  close_writer_locked();
}

void ShmLink::close_writer() {
  std::lock_guard lk(write_mu_);
  close_writer_locked();
}

bool ShmLink::inject_raw(const void* data, std::size_t len) {
  std::lock_guard lk(write_mu_);
  if (writer_closed_.load()) return false;
  if (len > ring_.capacity() || !wait_for_space_locked(len)) return false;
  return ring_.try_write(data, len);
}

void ShmLink::reconcile_undelivered() {
  std::lock_guard lk(write_mu_);
  prune_acked_locked();
  for (const auto& [keys, count] : unacked_) {
    frames_undelivered_.fetch_add(1, std::memory_order_relaxed);
    lose_keys(keys, count, obs::LossSite::kFrameCorrupt);
  }
  unacked_.clear();
}

// --------------------------------------------------------------- ShmTransport

ShmTransport::ShmTransport(TransferProtocol& tp, ShmOptions opts)
    : opts_(opts) {
  if (!is_power_of_two(opts_.ring_capacity))
    throw std::invalid_argument(
        "ShmTransport: ring_capacity must be a nonzero power of two");
  if (opts_.ring_capacity <
      sizeof(FrameHeader) + sizeof(trace::EventRecord))
    throw std::invalid_argument(
        "ShmTransport: ring_capacity below one single-record frame");
  if (opts_.max_frame_records == 0)
    throw std::invalid_argument("ShmTransport: max_frame_records 0");
  const std::size_t n = tp.data_link_count();
  segments_.reserve(n);
  egress_.reserve(n);
  links_.reserve(n);
  rxs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    segments_.push_back(std::make_unique<MappedSegment>(
        ShmRing::segment_bytes(opts_.ring_capacity)));
    egress_.push_back(std::make_unique<DataLink>(tp.data_link(i).capacity()));
    const ShmRing producer =
        ShmRing::create(segments_.back()->data(), opts_.ring_capacity);
    Rx rx;
    rx.ring = ShmRing::attach(segments_.back()->data());
    rx.link = i;
    rxs_.push_back(std::move(rx));
    links_.emplace_back(
        new ShmLink(i, tp.data_link(i), *egress_[i], producer, opts_));
  }
  reader_ = std::thread([this] { reader_main(); });
  for (auto& l : links_) l->start();
}

ShmTransport::~ShmTransport() {
  // Orderly even when the owner never ran a shutdown: close the ingress
  // links so the pumps drain and exit (publishing kProducerDone), and the
  // egress links so a reader blocked on a full buffer unblocks.  In the
  // normal lifecycle (Ism::stop -> close_data_links -> pump EOF -> reader
  // finish) all of this already happened and the closes are no-ops.
  for (auto& l : links_) l->ingress_.close();
  for (auto& e : egress_) e->close();
  links_.clear();  // joins the pumps -> kProducerDone on every ring
  if (reader_.joinable()) reader_.join();
}

void ShmTransport::quiesce() {
  // Pumps exit once their ingress is closed and drained, marking each ring
  // producer-done; the reader then drains the residue and retires every
  // ring, which freezes the undelivered ledgers.
  for (auto& l : links_)
    if (l->pump_.joinable()) l->pump_.join();
  if (reader_.joinable()) reader_.join();
}

void ShmTransport::set_fault(fault::FaultInjector* f,
                             fault::RetryPolicy retry) {
  for (auto& l : links_) l->set_fault(f, retry);
}

void ShmTransport::set_observer(obs::PipelineObserver* o) {
  for (auto& l : links_) l->set_observer(o);
}

std::uint64_t ShmTransport::records_lost_total() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->records_lost();
  return total;
}

std::uint64_t ShmTransport::frames_delivered_total() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->frames_delivered();
  return total;
}

void ShmTransport::deliver(Rx& rx) {
  ShmLink& l = *links_[rx.link];
  l.on_frame_delivered();
  const std::uint64_t count = rx.batch.records.size();
  std::vector<obs::LineageKey> keys;
  if (l.observer() != nullptr) {
    keys.reserve(count);
    for (const auto& r : rx.batch.records)
      keys.push_back(obs::lineage_key(r.node, r.process, r.seq));
  }
  DataBatch b = std::move(rx.batch);
  rx.batch = DataBatch{};
  rx.in_payload = false;
  if (!egress_[rx.link]->push(Message(std::move(b)))) {
    // Egress closed under us (abandoned teardown): the frame crossed the
    // ring but the ISM will never see it.
    l.lose_keys(keys, count, obs::LossSite::kIsmQueue);
  }
}

void ShmTransport::finish(Rx& rx, bool corrupt) {
  ShmLink& l = *links_[rx.link];
  if (corrupt) l.on_reader_corrupt();
  // Consumer-gone first: a pump parked on a full ring observes the flag and
  // fails its send cleanly instead of racing the ledger reconciled below.
  rx.ring.set_flags(ShmRing::kConsumerGone);
  if (rx.in_payload) {
    BatchArena::instance().release(std::move(rx.batch.records));
    rx.batch = DataBatch{};
    rx.in_payload = false;
  }
  rx.done = true;
  l.reconcile_undelivered();
  egress_[rx.link]->close();
}

bool ShmTransport::service(Rx& rx) {
  // Drains complete frames, then decides EOF.  Lambda so the EOF path can
  // run one conclusive extra drain after observing a lifecycle flag (the
  // flag is released after the producer's final byte, so everything still
  // in flight is visible by then).
  const auto drain = [this, &rx] {
    bool progress = false;
    while (!rx.done) {
      if (!rx.in_payload) {
        if (!rx.ring.try_read(&rx.hdr, sizeof rx.hdr)) break;
        progress = true;
        if (rx.hdr.magic != kFrameMagic ||
            rx.hdr.record_count > opts_.max_frame_records) {
          // The header is untrusted shared state: a bad magic or an insane
          // record count desynchronizes the stream — stop before
          // allocating anything from it.
          finish(rx, /*corrupt=*/true);
          break;
        }
        rx.batch = DataBatch{};
        rx.batch.source_node = rx.hdr.source_node;
        rx.batch.t_sent_ns = rx.hdr.t_sent_ns;
        // Staging storage from the shared arena: the ISM returns it after
        // consuming the batch, so steady-state receive allocates nothing.
        rx.batch.records =
            BatchArena::instance().acquire(rx.hdr.record_count);
        rx.in_payload = true;
      } else {
        if (!rx.ring.try_read(
                rx.batch.records.empty() ? nullptr
                                         : rx.batch.records.data(),
                rx.batch.records.size() * sizeof(trace::EventRecord)))
          break;
        progress = true;
        deliver(rx);
      }
    }
    return progress;
  };

  bool progress = drain();
  if (rx.done) return progress;
  const std::uint32_t fl = rx.ring.flags();
  if ((fl & (ShmRing::kProducerDone | ShmRing::kPoisoned)) == 0)
    return progress;
  progress = drain() || progress;
  if (rx.done) return progress;
  // Nothing more will ever arrive.  A poisoned stream, a frame cut mid-
  // payload, or stray bytes short of a header all mean corruption; a bare
  // producer-done ring is clean EOF.
  const bool truncated = (fl & ShmRing::kPoisoned) != 0 || rx.in_payload ||
                         rx.ring.readable() != 0;
  finish(rx, truncated);
  return true;
}

void ShmTransport::reader_main() {
  // Busy/idle split for the live tier's obs report: the yield/sleep rungs
  // of the backoff ladder are idle; spinning and draining rings are busy
  // (a spinning reader occupies its core whether or not frames arrive).
  obs::prof::WorkerClock clock("io.shm.reader");
  std::size_t idle = 0;
  for (;;) {
    bool any = false;
    bool all_done = true;
    for (auto& rx : rxs_) {
      if (rx.done) continue;
      all_done = false;
      if (service(rx)) any = true;
    }
    if (all_done) return;
    if (any) {
      idle = 0;
      continue;
    }
    // Idle backoff: re-poll immediately a few times (a producer is usually
    // mid-publish), then yield, then sleep so an idle plane costs nothing.
    if (++idle < 16) continue;
    if (idle < 64) {
      const std::uint64_t t_park = obs::prof::prof_now_ns();
      std::this_thread::yield();
      clock.add_idle_ns(obs::prof::prof_now_ns() - t_park);
      continue;
    }
    const std::uint64_t t_park = obs::prof::prof_now_ns();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    clock.add_idle_ns(obs::prof::prof_now_ns() - t_park);
  }
}

}  // namespace prism::core
