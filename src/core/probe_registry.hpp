// Registry of dynamically switchable probes — the substrate for Paradyn-
// style dynamic instrumentation over the control plane: "instrumentation is
// inserted dynamically in the program during runtime to generate samples"
// (§3.2), realized live as enabling/disabling registered probes in response
// to ControlKind::kEnableInstrumentation / kDisableInstrumentation messages.
//
// Thread-safe: probes register/deregister from application threads, control
// handling happens on daemon threads, W3-style searches toggle from a tool
// thread.  The registry does not own the probes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/sensor.hpp"
#include "core/transfer_protocol.hpp"

namespace prism::core {

class ProbeRegistry {
 public:
  /// Registers a probe under its id().  Multiple probes may share an id
  /// (e.g. the same metric instrumented on every process); control actions
  /// apply to all of them.
  void add(Probe* probe);
  void remove(Probe* probe);

  /// Enables/disables every probe with the given id.  Returns the number
  /// of probes affected.
  std::size_t enable(std::uint16_t id);
  std::size_t disable(std::uint16_t id);

  /// Applies a control message (ignores non-instrumentation kinds).
  /// The message's `value` carries the probe id.
  void apply(const ControlMessage& m);

  std::size_t size() const;
  std::size_t enabled_count() const;
  /// Ids currently registered (sorted, unique).
  std::vector<std::uint16_t> ids() const;

 private:
  mutable std::mutex mu_;
  std::multimap<std::uint16_t, Probe*> probes_;
};

}  // namespace prism::core
