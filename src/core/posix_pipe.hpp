// A real kernel-pipe transfer-protocol link (§2.2.3 names pipes as the
// Paradyn TP).  PosixPipeLink frames DataBatch messages over a pipe(2):
// the writer side is callable from any LIS thread; a reader thread
// deserializes frames and delivers them into an in-process DataLink, so the
// rest of the stack (ISM, tools) is unchanged.  This demonstrates that the
// TP abstraction really does cover OS IPC — batches cross a kernel buffer
// with genuine blocking-on-full semantics.
//
// Process-wide side effect: the first PosixPipeLink constructed sets the
// process's SIGPIPE disposition to SIG_IGN (exactly once, via
// std::call_once), so writes to a dead reader surface as EPIPE errors
// instead of killing the process.  A handler the application installs
// *after* that first link is never clobbered by later links.
//
// Failure semantics: a pipe is a byte stream, so a frame that fails
// mid-write desynchronizes every byte after it — no later frame boundary
// can be trusted.  The link fails hard instead of limping: the writer end
// is closed, stream_corrupt() latches, and the aborted frame's records are
// attributed to the frame_corrupt loss site.  Symmetrically, the reader
// treats a truncated header, a bad magic, an oversized record count, or a
// truncated payload as a corrupt stream: it stops reading and closes the
// read end so blocked writers fail with EPIPE rather than hanging.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/transfer_protocol.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism::core {

class PosixPipeLink {
 public:
  /// Upper bound on records per frame accepted from the wire.  A header is
  /// untrusted input: a corrupt (or hostile) record_count must not be able
  /// to drive a multi-GB allocation in the reader.
  static constexpr std::uint64_t kDefaultMaxFrameRecords = 1u << 20;

  /// Frames sent into the pipe are delivered to `deliver_to` (typically the
  /// ISM's data link).  Throws std::system_error when pipe(2) fails and
  /// std::invalid_argument when `max_frame_records` is zero.
  explicit PosixPipeLink(
      DataLink& deliver_to,
      std::uint64_t max_frame_records = kDefaultMaxFrameRecords);
  ~PosixPipeLink();
  PosixPipeLink(const PosixPipeLink&) = delete;
  PosixPipeLink& operator=(const PosixPipeLink&) = delete;

  /// Writes one batch into the pipe (blocking if the kernel buffer is
  /// full).  Returns false after close_writer(), on a broken/corrupt
  /// stream, or when the fault plane destroyed the frame.
  bool send(const DataBatch& batch);

  /// Closes the write end; the reader drains remaining frames and exits.
  void close_writer();

  /// Attaches the fault plane (may be null).  kPipeSend is consulted once
  /// per send attempt (kSendFail retried per `retry`, stalls applied);
  /// kPipeFrame once per frame actually written (kFrameCorrupt flips the
  /// magic on the wire, kPartialFrame truncates the frame mid-write).
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

  /// Attaches the observability sink (may be null): records destroyed by
  /// frame aborts/corruption are attributed to frame_corrupt /
  /// retry_exhausted loss sites.  Call before traffic begins.
  void set_observer(obs::PipelineObserver* o) { observer_ = o; }

  /// Test hook: writes raw bytes into the pipe, bypassing framing — lets
  /// corruption tests place arbitrary garbage on the wire.
  bool inject_raw(const void* data, std::size_t len);

  std::uint64_t messages_sent() const { return messages_.load(); }
  std::uint64_t bytes_sent() const { return bytes_.load(); }
  std::uint64_t frames_delivered() const { return delivered_.load(); }
  /// Frames the reader rejected (truncated header, bad magic, oversized
  /// record count, truncated payload).
  std::uint64_t frames_corrupt() const { return frames_corrupt_.load(); }
  /// Frames the writer destroyed (mid-frame write failure, injected
  /// corruption or truncation).
  std::uint64_t frames_aborted() const { return frames_aborted_.load(); }
  /// Failed send attempts, injected and organic.
  std::uint64_t send_failures() const { return send_failures_.load(); }
  /// Latched once either end declared the byte stream desynchronized.
  bool stream_corrupt() const { return stream_corrupt_.load(); }
  std::uint64_t max_frame_records() const { return max_frame_records_; }

 private:
  void reader_main();
  /// Reader-side: latch corruption and close the read end so blocked
  /// writers get EPIPE instead of hanging on a stream no one reads.
  void reader_declare_corrupt();
  /// Writer-side (write_mu_ held): the stream is desynchronized — close
  /// the write end, latch, and attribute the batch's records.
  void abort_stream_locked(const DataBatch& batch);
  void lose_batch(const DataBatch& batch, obs::LossSite site);

  DataLink& out_;
  const std::uint64_t max_frame_records_;
  int read_fd_ = -1;
  int write_fd_ = -1;
  std::mutex write_mu_;
  std::thread reader_;
  std::atomic<bool> writer_closed_{false};
  std::atomic<bool> stream_corrupt_{false};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> frames_corrupt_{0};
  std::atomic<std::uint64_t> frames_aborted_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  fault::FaultInjector* fault_ = nullptr;
  fault::RetryPolicy retry_;
  stats::Rng backoff_rng_{0};  // guarded by write_mu_
  obs::PipelineObserver* observer_ = nullptr;
};

}  // namespace prism::core
