// A real kernel-pipe transfer-protocol link (§2.2.3 names pipes as the
// Paradyn TP).  PosixPipeLink frames DataBatch messages over a pipe(2):
// the writer side is callable from any LIS thread; a reader thread
// deserializes frames and delivers them into an in-process DataLink, so the
// rest of the stack (ISM, tools) is unchanged.  This demonstrates that the
// TP abstraction really does cover OS IPC — batches cross a kernel buffer
// with genuine blocking-on-full semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/transfer_protocol.hpp"

namespace prism::core {

class PosixPipeLink {
 public:
  /// Frames sent into the pipe are delivered to `deliver_to` (typically the
  /// ISM's data link).  Throws std::system_error when pipe(2) fails.
  explicit PosixPipeLink(DataLink& deliver_to);
  ~PosixPipeLink();
  PosixPipeLink(const PosixPipeLink&) = delete;
  PosixPipeLink& operator=(const PosixPipeLink&) = delete;

  /// Writes one batch into the pipe (blocking if the kernel buffer is
  /// full).  Returns false after close_writer() or on a broken pipe.
  bool send(const DataBatch& batch);

  /// Closes the write end; the reader drains remaining frames and exits.
  void close_writer();

  std::uint64_t messages_sent() const { return messages_.load(); }
  std::uint64_t bytes_sent() const { return bytes_.load(); }
  std::uint64_t frames_delivered() const { return delivered_.load(); }

 private:
  void reader_main();

  DataLink& out_;
  int read_fd_ = -1;
  int write_fd_ = -1;
  std::mutex write_mu_;
  std::thread reader_;
  std::atomic<bool> writer_closed_{false};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace prism::core
