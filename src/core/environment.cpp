#include "core/environment.hpp"

#include <sstream>
#include <stdexcept>

#include "core/shm_link.hpp"
#include "core/socket_link.hpp"

#if PRISM_OBS_ENABLED
#include <unistd.h>

#include <chrono>

#include "obs/live/endpoint.hpp"
#include "obs/live/expo.hpp"
#include "obs/live/flight.hpp"
#include "obs/live/health.hpp"
#include "obs/live/sampler.hpp"
#endif

namespace prism::core {

std::string_view to_string(LisStyle s) {
  switch (s) {
    case LisStyle::kBuffered: return "buffered";
    case LisStyle::kForwarding: return "forwarding";
    case LisStyle::kDaemon: return "daemon";
  }
  return "unknown";
}

std::string_view to_string(TelemetryMode m) {
  switch (m) {
    case TelemetryMode::kOff: return "off";
    case TelemetryMode::kUnix: return "unix";
    case TelemetryMode::kTcp: return "tcp";
  }
  return "unknown";
}

std::string_view to_string(ShardAssign a) {
  switch (a) {
    case ShardAssign::kHash: return "hash";
    case ShardAssign::kModulo: return "modulo";
  }
  return "unknown";
}

std::unique_ptr<FlushPolicy> make_flush_policy(const EnvironmentConfig& cfg) {
  switch (cfg.flush_policy) {
    case FlushPolicyKind::kFof: return std::make_unique<FlushOnFill>();
    case FlushPolicyKind::kFaof: return std::make_unique<FlushAllOnFill>();
    case FlushPolicyKind::kThreshold:
      return std::make_unique<ThresholdFlush>(cfg.flush_threshold_fraction);
    case FlushPolicyKind::kAdaptive:
      return std::make_unique<AdaptiveThresholdFlush>(
          cfg.adaptive_target_flush_ns);
  }
  throw std::invalid_argument("make_flush_policy: unknown policy");
}

IntegratedEnvironment::IntegratedEnvironment(EnvironmentConfig config)
    : config_(config) {
  if (config_.nodes == 0)
    throw std::invalid_argument("IntegratedEnvironment: 0 nodes");
  const std::size_t data_links =
      config_.ism.input == InputConfig::kSiso ? 1 : config_.nodes;
  tp_ = std::make_unique<TransferProtocol>(config_.tp_flavor, config_.nodes,
                                           data_links, config_.link_capacity);
  // kSocket and kShm have real data planes: batches leave the process's
  // in-memory links and cross kernel stream sockets or shared-memory rings.
  if (config_.tp_flavor == TpFlavor::kSocket)
    tp_->enable_socket_backend(config_.socket);
  else if (config_.tp_flavor == TpFlavor::kShm)
    tp_->enable_shm_backend(config_.shm);
  ism_ = std::make_unique<Ism>(*tp_, config_.ism);
  lises_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    switch (config_.lis_style) {
      case LisStyle::kBuffered:
        lises_.push_back(std::make_unique<BufferedLis>(
            n, config_.local_buffer_capacity, make_flush_policy(config_),
            tp_->data_link_for(n),
            config_.flush_policy == FlushPolicyKind::kFaof ? &coordinator_
                                                           : nullptr));
        break;
      case LisStyle::kForwarding:
        lises_.push_back(
            std::make_unique<ForwardingLis>(n, tp_->data_link_for(n)));
        break;
      case LisStyle::kDaemon:
        lises_.push_back(std::make_unique<DaemonLis>(
            n, config_.processes_per_node, config_.pipe_capacity,
            config_.sampling_period_ns, tp_->data_link_for(n),
            &tp_->control_link(n), config_.daemon_blocks_app_on_full_pipe,
            &probe_registry_));
        break;
    }
  }
}

IntegratedEnvironment::~IntegratedEnvironment() {
  try {
    stop();
  } catch (...) {
    // Shutdown must not throw from a destructor.
  }
}

void IntegratedEnvironment::attach_tool(std::shared_ptr<Tool> tool) {
  ism_->attach_tool(std::move(tool));
}

void IntegratedEnvironment::start() {
  if (started_) return;
  started_ = true;
  ism_->start();
  if (config_.telemetry.mode != TelemetryMode::kOff) {
#if PRISM_OBS_ENABLED
    if (config_.telemetry.period_ms == 0)
      throw std::invalid_argument("telemetry: period_ms must be > 0");
    obs::live::SamplerOptions so;
    so.period_ms = config_.telemetry.period_ms;
    sampler_ = std::make_unique<obs::live::TelemetrySampler>(
        so, [this](obs::live::HealthSnapshot& s) { collect_health(s); });
    obs::live::EndpointOptions eo;
    if (config_.telemetry.mode == TelemetryMode::kUnix) {
      eo.kind = obs::live::EndpointKind::kUnix;
      eo.address = config_.telemetry.endpoint.empty()
                       ? "/tmp/prism.telemetry." + std::to_string(::getpid()) +
                             ".sock"
                       : config_.telemetry.endpoint;
    } else {
      eo.kind = obs::live::EndpointKind::kTcp;
      eo.address = config_.telemetry.endpoint.empty()
                       ? "0"
                       : config_.telemetry.endpoint;
    }
    server_ = std::make_unique<obs::live::TelemetryServer>(
        eo, [this](std::string_view path, std::string& content_type,
                   std::string& body) {
          // Scrapes are cold: force a fresh sample so the reader never sees
          // one staler than the request itself.
          obs::live::HealthSnapshot hs;
          if (path == "/metrics" || path == "/") {
            sampler_->sample_now();
            const bool have = sampler_->read(hs);
            const auto now_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count());
            content_type = "text/plain; version=0.0.4";
            body = obs::live::prometheus_exposition(
                obs::Registry::instance().snapshot(), have ? &hs : nullptr,
                now_ns);
            return true;
          }
          if (path == "/health" || path == "/health.json") {
            sampler_->sample_now();
            if (!sampler_->read(hs)) return false;
            content_type = "application/json";
            body = obs::live::health_json(hs);
            return true;
          }
          if (path == "/flight" || path == "/flight.json") {
            content_type = "application/json";
            body = obs::live::FlightRecorder::instance().dump_json();
            return true;
          }
          return false;
        });
#else
    throw std::runtime_error(
        "telemetry requested but this build has PRISM_OBS=OFF");
#endif
  }
}

void IntegratedEnvironment::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
#if PRISM_OBS_ENABLED
  // The scrape surface goes down before the pipeline (its handler samples
  // live stats); the sampler outlives the drain so its terminal stop()
  // sample — still readable via telemetry_sampler()->read() — reflects the
  // quiescent, fully-drained ledger.
  if (server_) server_->stop();
#endif
  for (auto& l : lises_) l->stop();
  // Graceful degradation: tell the ISM which sources died before it drains,
  // so the causal reorderer stops waiting for their lost sends and releases
  // the records their death stranded — partial results, fully delivered.
  for (std::uint32_t n = 0; n < lises_.size(); ++n)
    if (lises_[n]->dead()) ism_->mark_source_dead(n);
  ism_->stop();
#if PRISM_OBS_ENABLED
  if (sampler_) sampler_->stop();
#endif
}

Lis& IntegratedEnvironment::lis(std::uint32_t node) {
  if (node >= lises_.size())
    throw std::out_of_range("IntegratedEnvironment: bad node");
  return *lises_[node];
}

void IntegratedEnvironment::flush_all() {
  for (auto& l : lises_) l->flush();
}

LisStats IntegratedEnvironment::total_lis_stats() const {
  LisStats total;
  for (const auto& l : lises_) {
    const LisStats s = l->stats();
    total.recorded += s.recorded;
    total.dropped += s.dropped;
    total.flushes += s.flushes;
    total.records_forwarded += s.records_forwarded;
    total.flush_time_ns += s.flush_time_ns;
    total.buffered += s.buffered;
    total.lost_send += s.lost_send;
    total.lost_dead += s.lost_dead;
  }
  return total;
}

void IntegratedEnvironment::set_observer(obs::PipelineObserver* o) {
  for (auto& l : lises_) l->set_observer(o);
  ism_->set_observer(o);
  tp_->set_observer(o);
}

void IntegratedEnvironment::set_fault(fault::FaultInjector* f,
                                      fault::RetryPolicy retry) {
  for (auto& l : lises_) l->set_fault(f, retry);
  ism_->set_fault(f);
  tp_->set_fault(f, retry);
}

#if PRISM_OBS_ENABLED

// The read ordering here is the whole trick (StageHealth's contract): for
// each stage row, the counters that can only grow *after* admission —
// completed, then losses — are read before the admitted counter, so a
// record in completed/lost at read time is always already in admitted and
// the derived in_flight residue is non-negative in every sample.  Buffered
// and forwarding LISes update their stats under one mutex (internally
// consistent per read); the daemon LIS admits a benign inversion (its
// daemon can forward a piped record before the app thread counts it
// recorded), which latches StageHealth::torn instead of fabricating a
// negative residue.
void IntegratedEnvironment::collect_health(
    obs::live::HealthSnapshot& snap) const {
  // 1. Downstream completions first.
  const IsmStats ism = ism_->stats();
  // 2. Losses second.
  std::uint64_t wire_lost = 0;
  const bool wire = tp_->socket_backend_enabled() || tp_->shm_backend_enabled();
  if (tp_->socket_backend_enabled())
    wire_lost = tp_->socket_transport()->records_lost_total();
  else if (tp_->shm_backend_enabled())
    wire_lost = tp_->shm_transport()->records_lost_total();
  const std::uint64_t control_dropped = tp_->control_dropped_total();
  std::uint32_t lises_dead = 0;
  for (const auto& l : lises_)
    if (l->dead()) ++lises_dead;
  // 3. Admission counters last (one consistent per-LIS pass).
  const LisStats lis = total_lis_stats();

  snap.add_stage("lis", lis.recorded, lis.records_forwarded,
                 lis.lost_send + lis.lost_dead, lis.dropped);
  if (wire)
    snap.add_stage("wire", lis.records_forwarded, ism.records_received,
                   wire_lost);
  snap.add_stage("ism", ism.records_received, ism.records_dispatched, 0);
  snap.add_stage("pipeline", lis.recorded, ism.records_dispatched,
                 lis.lost_send + lis.lost_dead + wire_lost, lis.dropped);

  snap.lises_dead = lises_dead;
  snap.tools_failed = ism.tools_failed;
  snap.records_lost_send = lis.lost_send;
  snap.records_lost_dead = lis.lost_dead;
  snap.records_lost_wire = wire_lost;
  snap.control_dropped = control_dropped;
  snap.holdback_expired = ism.expired_released;
}

std::string IntegratedEnvironment::telemetry_address() const {
  return server_ ? server_->address() : std::string();
}

#endif  // PRISM_OBS_ENABLED

DegradationReport IntegratedEnvironment::degradation() const {
  DegradationReport d;
  for (const auto& l : lises_) {
    if (l->dead()) ++d.lises_dead;
    const LisStats s = l->stats();
    d.records_lost_send += s.lost_send;
    d.records_lost_dead += s.lost_dead;
  }
  const IsmStats is = ism_->stats();
  d.tools_failed = is.tools_failed;
  d.holdback_expired = is.expired_released;
  d.control_dropped = tp_->control_dropped_total();
  if (tp_->socket_backend_enabled())
    d.records_lost_wire = tp_->socket_transport()->records_lost_total();
  else if (tp_->shm_backend_enabled())
    d.records_lost_wire = tp_->shm_transport()->records_lost_total();
  return d;
}

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << "degradation: lises_dead=" << lises_dead
     << " tools_failed=" << tools_failed
     << " lost_send=" << records_lost_send
     << " lost_dead=" << records_lost_dead
     << " lost_wire=" << records_lost_wire
     << " control_dropped=" << control_dropped
     << " holdback_expired=" << holdback_expired;
  // Federation fields only when a federation produced the report — flat
  // topologies keep the historical single-level line.
  if (shards_dead || records_lost_uplink || records_lost_agg)
    os << " shards_dead=" << shards_dead
       << " lost_uplink=" << records_lost_uplink
       << " lost_agg=" << records_lost_agg;
  return os.str();
}

IsClassification IntegratedEnvironment::classification() const {
  IsClassification c;
  // Off-line when the only consumer path is the storage tier; a live tool
  // set makes it on-line.  We report the configuration's capability.
  c.analysis = config_.ism.storage_path ? AnalysisSupport::kOnOffline
                                        : AnalysisSupport::kOnline;
  c.synthesis = SynthesisApproach::kApplicationSpecific;  // configurable
  c.management = config_.flush_policy == FlushPolicyKind::kAdaptive
                     ? ManagementApproach::kAdaptive
                     : ManagementApproach::kStatic;
  c.evaluation = EvaluationApproach::kStructuredModeling;
  return c;
}

}  // namespace prism::core
