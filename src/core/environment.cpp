#include "core/environment.hpp"

#include <sstream>
#include <stdexcept>

#include "core/shm_link.hpp"
#include "core/socket_link.hpp"

namespace prism::core {

std::string_view to_string(LisStyle s) {
  switch (s) {
    case LisStyle::kBuffered: return "buffered";
    case LisStyle::kForwarding: return "forwarding";
    case LisStyle::kDaemon: return "daemon";
  }
  return "unknown";
}

namespace {

std::unique_ptr<FlushPolicy> make_policy(const EnvironmentConfig& cfg) {
  switch (cfg.flush_policy) {
    case FlushPolicyKind::kFof: return std::make_unique<FlushOnFill>();
    case FlushPolicyKind::kFaof: return std::make_unique<FlushAllOnFill>();
    case FlushPolicyKind::kThreshold:
      return std::make_unique<ThresholdFlush>(cfg.flush_threshold_fraction);
    case FlushPolicyKind::kAdaptive:
      return std::make_unique<AdaptiveThresholdFlush>(
          cfg.adaptive_target_flush_ns);
  }
  throw std::invalid_argument("make_policy: unknown policy");
}

}  // namespace

IntegratedEnvironment::IntegratedEnvironment(EnvironmentConfig config)
    : config_(config) {
  if (config_.nodes == 0)
    throw std::invalid_argument("IntegratedEnvironment: 0 nodes");
  const std::size_t data_links =
      config_.ism.input == InputConfig::kSiso ? 1 : config_.nodes;
  tp_ = std::make_unique<TransferProtocol>(config_.tp_flavor, config_.nodes,
                                           data_links, config_.link_capacity);
  // kSocket and kShm have real data planes: batches leave the process's
  // in-memory links and cross kernel stream sockets or shared-memory rings.
  if (config_.tp_flavor == TpFlavor::kSocket)
    tp_->enable_socket_backend(config_.socket);
  else if (config_.tp_flavor == TpFlavor::kShm)
    tp_->enable_shm_backend(config_.shm);
  ism_ = std::make_unique<Ism>(*tp_, config_.ism);
  lises_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    switch (config_.lis_style) {
      case LisStyle::kBuffered:
        lises_.push_back(std::make_unique<BufferedLis>(
            n, config_.local_buffer_capacity, make_policy(config_),
            tp_->data_link_for(n),
            config_.flush_policy == FlushPolicyKind::kFaof ? &coordinator_
                                                           : nullptr));
        break;
      case LisStyle::kForwarding:
        lises_.push_back(
            std::make_unique<ForwardingLis>(n, tp_->data_link_for(n)));
        break;
      case LisStyle::kDaemon:
        lises_.push_back(std::make_unique<DaemonLis>(
            n, config_.processes_per_node, config_.pipe_capacity,
            config_.sampling_period_ns, tp_->data_link_for(n),
            &tp_->control_link(n), config_.daemon_blocks_app_on_full_pipe,
            &probe_registry_));
        break;
    }
  }
}

IntegratedEnvironment::~IntegratedEnvironment() {
  try {
    stop();
  } catch (...) {
    // Shutdown must not throw from a destructor.
  }
}

void IntegratedEnvironment::attach_tool(std::shared_ptr<Tool> tool) {
  ism_->attach_tool(std::move(tool));
}

void IntegratedEnvironment::start() {
  if (started_) return;
  started_ = true;
  ism_->start();
}

void IntegratedEnvironment::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& l : lises_) l->stop();
  // Graceful degradation: tell the ISM which sources died before it drains,
  // so the causal reorderer stops waiting for their lost sends and releases
  // the records their death stranded — partial results, fully delivered.
  for (std::uint32_t n = 0; n < lises_.size(); ++n)
    if (lises_[n]->dead()) ism_->mark_source_dead(n);
  ism_->stop();
}

Lis& IntegratedEnvironment::lis(std::uint32_t node) {
  if (node >= lises_.size())
    throw std::out_of_range("IntegratedEnvironment: bad node");
  return *lises_[node];
}

void IntegratedEnvironment::flush_all() {
  for (auto& l : lises_) l->flush();
}

LisStats IntegratedEnvironment::total_lis_stats() const {
  LisStats total;
  for (const auto& l : lises_) {
    const LisStats s = l->stats();
    total.recorded += s.recorded;
    total.dropped += s.dropped;
    total.flushes += s.flushes;
    total.records_forwarded += s.records_forwarded;
    total.flush_time_ns += s.flush_time_ns;
    total.buffered += s.buffered;
    total.lost_send += s.lost_send;
    total.lost_dead += s.lost_dead;
  }
  return total;
}

void IntegratedEnvironment::set_observer(obs::PipelineObserver* o) {
  for (auto& l : lises_) l->set_observer(o);
  ism_->set_observer(o);
  tp_->set_observer(o);
}

void IntegratedEnvironment::set_fault(fault::FaultInjector* f,
                                      fault::RetryPolicy retry) {
  for (auto& l : lises_) l->set_fault(f, retry);
  ism_->set_fault(f);
  tp_->set_fault(f, retry);
}

DegradationReport IntegratedEnvironment::degradation() const {
  DegradationReport d;
  for (const auto& l : lises_) {
    if (l->dead()) ++d.lises_dead;
    const LisStats s = l->stats();
    d.records_lost_send += s.lost_send;
    d.records_lost_dead += s.lost_dead;
  }
  const IsmStats is = ism_->stats();
  d.tools_failed = is.tools_failed;
  d.holdback_expired = is.expired_released;
  d.control_dropped = tp_->control_dropped_total();
  if (tp_->socket_backend_enabled())
    d.records_lost_wire = tp_->socket_transport()->records_lost_total();
  else if (tp_->shm_backend_enabled())
    d.records_lost_wire = tp_->shm_transport()->records_lost_total();
  return d;
}

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << "degradation: lises_dead=" << lises_dead
     << " tools_failed=" << tools_failed
     << " lost_send=" << records_lost_send
     << " lost_dead=" << records_lost_dead
     << " lost_wire=" << records_lost_wire
     << " control_dropped=" << control_dropped
     << " holdback_expired=" << holdback_expired;
  return os.str();
}

IsClassification IntegratedEnvironment::classification() const {
  IsClassification c;
  // Off-line when the only consumer path is the storage tier; a live tool
  // set makes it on-line.  We report the configuration's capability.
  c.analysis = config_.ism.storage_path ? AnalysisSupport::kOnOffline
                                        : AnalysisSupport::kOnline;
  c.synthesis = SynthesisApproach::kApplicationSpecific;  // configurable
  c.management = config_.flush_policy == FlushPolicyKind::kAdaptive
                     ? ManagementApproach::kAdaptive
                     : ManagementApproach::kStatic;
  c.evaluation = EvaluationApproach::kStructuredModeling;
  return c;
}

}  // namespace prism::core
