#include "core/config_io.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "core/shm_ring.hpp"

namespace prism::core {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::uint64_t parse_u64(std::size_t line, const std::string& v) {
  std::uint64_t out = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || p != v.data() + v.size())
    throw ConfigError(line, "expected an unsigned integer, got '" + v + "'");
  return out;
}

double parse_double(std::size_t line, const std::string& v) {
  // from_chars, not stod: stod honors the global C locale (a config written
  // with '.' fails to parse under a ',' decimal locale) and throws an
  // unrelated out_of_range on overflow ("1e999") instead of a ConfigError.
  double out = 0.0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec == std::errc::result_out_of_range)
    throw ConfigError(line, "number out of range: '" + v + "'");
  if (ec != std::errc{} || p != v.data() + v.size())
    throw ConfigError(line, "expected a number, got '" + v + "'");
  return out;
}

bool parse_bool(std::size_t line, const std::string& v) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ConfigError(line, "expected a boolean, got '" + v + "'");
}

}  // namespace

EnvironmentConfig parse_environment_config(const std::string& text) {
  EnvironmentConfig cfg;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments.
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw ConfigError(lineno, "expected 'key = value', got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) throw ConfigError(lineno, "empty key");
    if (value.empty()) throw ConfigError(lineno, "empty value for '" + key + "'");

    if (key == "nodes") {
      cfg.nodes = static_cast<std::uint32_t>(parse_u64(lineno, value));
    } else if (key == "processes_per_node") {
      cfg.processes_per_node =
          static_cast<std::uint32_t>(parse_u64(lineno, value));
    } else if (key == "lis") {
      if (value == "buffered") cfg.lis_style = LisStyle::kBuffered;
      else if (value == "forwarding") cfg.lis_style = LisStyle::kForwarding;
      else if (value == "daemon") cfg.lis_style = LisStyle::kDaemon;
      else throw ConfigError(lineno, "unknown lis style '" + value + "'");
    } else if (key == "flush_policy") {
      if (value == "fof") cfg.flush_policy = FlushPolicyKind::kFof;
      else if (value == "faof") cfg.flush_policy = FlushPolicyKind::kFaof;
      else if (value == "threshold")
        cfg.flush_policy = FlushPolicyKind::kThreshold;
      else if (value == "adaptive")
        cfg.flush_policy = FlushPolicyKind::kAdaptive;
      else throw ConfigError(lineno, "unknown flush policy '" + value + "'");
    } else if (key == "buffer_capacity") {
      cfg.local_buffer_capacity = parse_u64(lineno, value);
    } else if (key == "flush_threshold") {
      cfg.flush_threshold_fraction = parse_double(lineno, value);
    } else if (key == "adaptive_target_flush_ns") {
      cfg.adaptive_target_flush_ns = parse_u64(lineno, value);
    } else if (key == "sampling_period_ns") {
      cfg.sampling_period_ns = parse_u64(lineno, value);
    } else if (key == "pipe_capacity") {
      cfg.pipe_capacity = parse_u64(lineno, value);
    } else if (key == "daemon_blocks_app") {
      cfg.daemon_blocks_app_on_full_pipe = parse_bool(lineno, value);
    } else if (key == "tp") {
      if (value == "pipe") cfg.tp_flavor = TpFlavor::kPipe;
      else if (value == "socket") cfg.tp_flavor = TpFlavor::kSocket;
      else if (value == "rpc") cfg.tp_flavor = TpFlavor::kRpc;
      else if (value == "custom") cfg.tp_flavor = TpFlavor::kCustom;
      else if (value == "shm") cfg.tp_flavor = TpFlavor::kShm;
      else throw ConfigError(lineno, "unknown tp flavor '" + value + "'");
    } else if (key == "link_capacity") {
      cfg.link_capacity = parse_u64(lineno, value);
    } else if (key == "socket_domain") {
      if (value == "unix") cfg.socket.domain = SocketDomain::kUnix;
      else if (value == "tcp") cfg.socket.domain = SocketDomain::kTcpLoopback;
      else throw ConfigError(lineno, "unknown socket domain '" + value + "'");
    } else if (key == "socket_coalesce_bytes") {
      cfg.socket.coalesce_byte_budget = parse_u64(lineno, value);
      if (cfg.socket.coalesce_byte_budget == 0)
        throw ConfigError(lineno, "socket_coalesce_bytes must be positive");
    } else if (key == "socket_max_frame_records") {
      cfg.socket.max_frame_records = parse_u64(lineno, value);
      if (cfg.socket.max_frame_records == 0)
        throw ConfigError(lineno, "socket_max_frame_records must be positive");
    } else if (key == "shm_ring_capacity") {
      cfg.shm.ring_capacity = parse_u64(lineno, value);
      // Validated at parse time, not link setup: a zero or non-power-of-two
      // capacity would otherwise surface as a throw deep inside environment
      // construction, far from the config line that caused it.
      if (!is_power_of_two(cfg.shm.ring_capacity))
        throw ConfigError(
            lineno, "shm_ring_capacity must be a nonzero power of two, got '" +
                        value + "'");
    } else if (key == "shm_max_frame_records") {
      cfg.shm.max_frame_records = parse_u64(lineno, value);
      if (cfg.shm.max_frame_records == 0)
        throw ConfigError(lineno, "shm_max_frame_records must be positive");
    } else if (key == "ism_input") {
      if (value == "siso") cfg.ism.input = InputConfig::kSiso;
      else if (value == "miso") cfg.ism.input = InputConfig::kMiso;
      else throw ConfigError(lineno, "unknown ism input '" + value + "'");
    } else if (key == "causal_ordering") {
      cfg.ism.causal_ordering = parse_bool(lineno, value);
    } else if (key == "output_capacity") {
      cfg.ism.output_capacity = parse_u64(lineno, value);
    } else if (key == "storage_path") {
      cfg.ism.storage_path = value;
    } else if (key == "telemetry") {
      if (value == "off") cfg.telemetry.mode = TelemetryMode::kOff;
      else if (value == "unix") cfg.telemetry.mode = TelemetryMode::kUnix;
      else if (value == "tcp") cfg.telemetry.mode = TelemetryMode::kTcp;
      else throw ConfigError(lineno, "unknown telemetry mode '" + value + "'");
    } else if (key == "telemetry_period_ms") {
      cfg.telemetry.period_ms = parse_u64(lineno, value);
      // Caught here rather than at start(), next to the offending line.
      if (cfg.telemetry.period_ms == 0)
        throw ConfigError(lineno, "telemetry_period_ms must be positive");
    } else if (key == "telemetry_endpoint") {
      cfg.telemetry.endpoint = value;
    } else if (key == "ism_shards") {
      cfg.federation.shards = static_cast<std::uint32_t>(parse_u64(lineno, value));
    } else if (key == "shard_virtual_nodes") {
      cfg.federation.virtual_nodes =
          static_cast<std::uint32_t>(parse_u64(lineno, value));
      if (cfg.federation.virtual_nodes == 0)
        throw ConfigError(lineno, "shard_virtual_nodes must be positive");
    } else if (key == "shard_assign") {
      if (value == "hash") cfg.federation.assign = ShardAssign::kHash;
      else if (value == "modulo") cfg.federation.assign = ShardAssign::kModulo;
      else throw ConfigError(lineno, "unknown shard_assign '" + value + "'");
    } else if (key == "root_tp") {
      if (value == "pipe") cfg.federation.root_tp = TpFlavor::kPipe;
      else if (value == "socket") cfg.federation.root_tp = TpFlavor::kSocket;
      else if (value == "rpc") cfg.federation.root_tp = TpFlavor::kRpc;
      else if (value == "custom") cfg.federation.root_tp = TpFlavor::kCustom;
      else if (value == "shm") cfg.federation.root_tp = TpFlavor::kShm;
      else throw ConfigError(lineno, "unknown root_tp flavor '" + value + "'");
    } else if (key == "agg_batch_records") {
      cfg.federation.agg_batch_records = parse_u64(lineno, value);
      if (cfg.federation.agg_batch_records == 0)
        throw ConfigError(lineno, "agg_batch_records must be positive");
    } else {
      throw ConfigError(lineno, "unknown key '" + key + "'");
    }
  }
  return cfg;
}

std::string serialize_environment_config(const EnvironmentConfig& cfg) {
  std::ostringstream os;
  os << "nodes = " << cfg.nodes << "\n";
  os << "processes_per_node = " << cfg.processes_per_node << "\n";
  os << "lis = " << to_string(cfg.lis_style) << "\n";
  os << "flush_policy = ";
  switch (cfg.flush_policy) {
    case FlushPolicyKind::kFof: os << "fof"; break;
    case FlushPolicyKind::kFaof: os << "faof"; break;
    case FlushPolicyKind::kThreshold: os << "threshold"; break;
    case FlushPolicyKind::kAdaptive: os << "adaptive"; break;
  }
  os << "\n";
  os << "buffer_capacity = " << cfg.local_buffer_capacity << "\n";
  os << "flush_threshold = " << cfg.flush_threshold_fraction << "\n";
  os << "adaptive_target_flush_ns = " << cfg.adaptive_target_flush_ns << "\n";
  os << "sampling_period_ns = " << cfg.sampling_period_ns << "\n";
  os << "pipe_capacity = " << cfg.pipe_capacity << "\n";
  os << "daemon_blocks_app = "
     << (cfg.daemon_blocks_app_on_full_pipe ? "true" : "false") << "\n";
  os << "tp = " << to_string(cfg.tp_flavor) << "\n";
  os << "link_capacity = " << cfg.link_capacity << "\n";
  os << "socket_domain = " << to_string(cfg.socket.domain) << "\n";
  os << "socket_coalesce_bytes = " << cfg.socket.coalesce_byte_budget << "\n";
  os << "socket_max_frame_records = " << cfg.socket.max_frame_records << "\n";
  os << "shm_ring_capacity = " << cfg.shm.ring_capacity << "\n";
  os << "shm_max_frame_records = " << cfg.shm.max_frame_records << "\n";
  os << "ism_input = "
     << (cfg.ism.input == InputConfig::kSiso ? "siso" : "miso") << "\n";
  os << "causal_ordering = " << (cfg.ism.causal_ordering ? "true" : "false")
     << "\n";
  os << "output_capacity = " << cfg.ism.output_capacity << "\n";
  if (cfg.ism.storage_path)
    os << "storage_path = " << cfg.ism.storage_path->string() << "\n";
  os << "telemetry = " << to_string(cfg.telemetry.mode) << "\n";
  os << "telemetry_period_ms = " << cfg.telemetry.period_ms << "\n";
  if (!cfg.telemetry.endpoint.empty())
    os << "telemetry_endpoint = " << cfg.telemetry.endpoint << "\n";
  os << "ism_shards = " << cfg.federation.shards << "\n";
  os << "shard_virtual_nodes = " << cfg.federation.virtual_nodes << "\n";
  os << "shard_assign = " << to_string(cfg.federation.assign) << "\n";
  if (cfg.federation.root_tp)
    os << "root_tp = " << to_string(*cfg.federation.root_tp) << "\n";
  os << "agg_batch_records = " << cfg.federation.agg_batch_records << "\n";
  return os.str();
}

}  // namespace prism::core
