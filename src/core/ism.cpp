#include "core/ism.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "core/clock.hpp"
#include "core/io_loop.hpp"
#include "obs/live/flight.hpp"
#include "obs/obs.hpp"

namespace prism::core {

std::string_view to_string(InputConfig c) {
  switch (c) {
    case InputConfig::kSiso: return "SISO";
    case InputConfig::kMiso: return "MISO";
  }
  return "unknown";
}

namespace {

std::uint64_t stream_seq_key(const trace::EventRecord& r) {
  // node:process:seq packed; seq is bounded well below 2^28 in practice for
  // live runs, and collisions only skew a latency sample, never correctness.
  return (static_cast<std::uint64_t>(r.node) << 46) ^
         (static_cast<std::uint64_t>(r.process) << 28) ^ r.seq;
}

obs::LineageKey obs_key(const trace::EventRecord& r) {
  return obs::lineage_key(r.node, r.process, r.seq);
}

}  // namespace

Ism::Ism(TransferProtocol& tp, IsmConfig config)
    : tp_(tp), config_(config) {
  output_ = std::make_unique<Channel<Timed>>(config_.output_capacity);
  if (config_.storage_path)
    storage_ = std::make_unique<trace::TraceFileWriter>(*config_.storage_path);
  // Sanity: TP link layout must match the configured input style.
  if (config_.input == InputConfig::kSiso && tp_.data_link_count() != 1)
    throw std::invalid_argument("Ism: SISO needs exactly one data link");
  if (config_.input == InputConfig::kMiso &&
      tp_.data_link_count() != tp_.nodes())
    throw std::invalid_argument("Ism: MISO needs one data link per node");
}

Ism::~Ism() { stop(); }

void Ism::attach_tool(std::shared_ptr<Tool> tool) {
  if (!tool) throw std::invalid_argument("Ism: null tool");
  std::lock_guard lk(mu_);
  if (started_) throw std::logic_error("Ism: attach_tool after start");
  tools_.push_back(std::move(tool));
}

void Ism::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  tool_dead_.assign(tools_.size(), 0);
  running_.store(true);
  processor_ = std::thread([this] { processor_main(); });
  dispatcher_ = std::thread([this] { dispatch_main(); });
}

void Ism::mark_source_dead(std::uint32_t node) {
  std::lock_guard lk(mu_);
  if (std::find(dead_sources_.begin(), dead_sources_.end(), node) !=
      dead_sources_.end())
    return;
  dead_sources_.push_back(node);
  ++stats_.sources_dead;
  PRISM_OBS_COUNT("core.ism.sources_dead");
}

void Ism::mark_sources_dead(const std::vector<std::uint32_t>& nodes) {
  for (auto n : nodes) mark_source_dead(n);
}

void Ism::processor_main() {
  // Latency bookkeeping for records held back by the reorderer: record key
  // -> TP arrival time.
  std::unordered_map<std::uint64_t, std::uint64_t> arrival_ns;

  if (config_.causal_ordering) {
    reorderer_ = std::make_unique<trace::CausalReorderer>(
        [this, &arrival_ns](const trace::EventRecord& r) {
          auto it = arrival_ns.find(stream_seq_key(r));
          const std::uint64_t t_arr =
              it != arrival_ns.end() ? it->second : current_batch_arrival_ns_;
          if (it != arrival_ns.end()) arrival_ns.erase(it);
          emit(r, t_arr);
        });
  }

  // The ISM consumes receive_link(): the data link itself for in-process
  // flavors, the socket backend's egress buffer when one is enabled.
  const std::size_t n_links = tp_.data_link_count();
  if (n_links == 1) {
    // SISO: block on the single input buffer.
    while (auto msg = tp_.receive_link(0).pop()) {
      PRISM_OBS_GAUGE_SET("core.ism.input_depth", tp_.receive_link(0).size());
      if (observer_)
        tp_.sample_depths(&observer_->timeline,
                          static_cast<double>(now_ns()));
      if (auto* batch = std::get_if<DataBatch>(&*msg)) {
        if (config_.causal_ordering) {
          for (auto& r : batch->records)
            arrival_ns.emplace(stream_seq_key(r), batch->t_sent_ns);
        }
        process_batch(std::move(*batch));
      }
    }
  } else {
    // MISO: round-robin over the per-node input buffers.
    std::size_t idle_spins = 0;
    for (;;) {
      bool any = false;
      bool all_done = true;
      for (std::size_t i = 0; i < n_links; ++i) {
        auto& link = tp_.receive_link(i);
        if (!link.closed() || link.size() > 0) all_done = false;
        if (auto msg = link.try_pop()) {
          any = true;
          if (observer_)
            tp_.sample_depths(&observer_->timeline,
                              static_cast<double>(now_ns()));
          if (auto* batch = std::get_if<DataBatch>(&*msg)) {
            if (config_.causal_ordering) {
              for (auto& r : batch->records)
                arrival_ns.emplace(stream_seq_key(r), batch->t_sent_ns);
            }
            process_batch(std::move(*batch));
          }
        }
      }
      if (all_done) break;
      if (!any) {
        if (++idle_spins > 64) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      } else {
        idle_spins = 0;
      }
    }
  }
  // Input exhausted.  First, stop waiting on dead sources: their sends will
  // never arrive, so receives held back on them are force-released (in
  // stream order) rather than stranded.  Whatever remains after expiry is
  // genuinely unresolvable; it stays held, and stats expose the residue via
  // held_back / still_held.  Lineage attributes it as ISM queue loss.
  if (reorderer_) {
    std::vector<std::uint32_t> dead;
    {
      std::lock_guard lk(mu_);
      dead = dead_sources_;
    }
    // One group expiry, not a per-node loop: when the dead set is a whole
    // aggregator shard, holds between two of its nodes must resolve within
    // the same pass (see CausalReorderer::expire_nodes).
    const std::size_t released = reorderer_->expire_nodes(dead);
    if (released) {
      std::lock_guard lk(mu_);
      stats_.expired_released += released;
      PRISM_OBS_COUNT_N("core.ism.expired_released", released);
    }
    if (observer_) {
      const auto t = static_cast<double>(now_ns());
      for (const auto& r : reorderer_->held_records())
        observer_->lineage.lose(obs_key(r), obs::LossSite::kIsmQueue, t);
    }
    std::lock_guard lk(mu_);
    stats_.still_held = reorderer_->held();
  }
  output_->close();
}

void Ism::process_batch(DataBatch&& batch) {
  PRISM_OBS_SPAN("ism.process_batch", "core");
  if (fault_) {
    // Receive-side faults: only delay kinds are meaningful here (the batch
    // already crossed the link; dropping it would un-conserve the ledger).
    const auto f =
        fault_->consult(fault::FaultSite::kTpReceive, batch.source_node);
    if (f.kind == fault::FaultKind::kStall ||
        f.kind == fault::FaultKind::kSlowConsumer)
      fault::sleep_ns(f.stall_ns);
  }
  PRISM_OBS_COUNT("core.ism.batches_received");
  PRISM_OBS_COUNT_N("core.ism.records_received", batch.records.size());
  {
    std::lock_guard lk(mu_);
    ++stats_.batches_received;
    stats_.records_received += batch.records.size();
  }
  current_batch_arrival_ns_ = batch.t_sent_ns;
  if (observer_) {
    const auto t_in = static_cast<double>(now_ns());
    for (const auto& r : batch.records)
      observer_->lineage.stamp(obs_key(r), obs::PipelineStage::kIsmInput,
                               t_in);
  }
  for (auto& r : batch.records) {
    if (config_.causal_ordering) {
      reorderer_->offer(r);
    } else {
      trace::EventRecord out = r;
      out.lamport = ++plain_lamport_;
      emit(out, batch.t_sent_ns);
    }
  }
  // The records are consumed (copied into the reorderer or emitted); the
  // storage goes back to the transport readers' staging pool.
  BatchArena::instance().release(std::move(batch.records));
  if (config_.causal_ordering) {
    std::lock_guard lk(mu_);
    stats_.held_back = reorderer_->held_back_total();
    stats_.still_held = reorderer_->held();
    stats_.hold_back_ratio = reorderer_->hold_back_ratio();
    PRISM_OBS_GAUGE_SET("core.ism.held_back", stats_.held_back);
    if (observer_)
      observer_->timeline.sample_changed(
          "ism.held", static_cast<double>(now_ns()),
          static_cast<double>(stats_.still_held));
  }
}

void Ism::emit(const trace::EventRecord& r, std::uint64_t t_arrival_ns) {
  const std::uint64_t t_now = now_ns();
  {
    std::lock_guard lk(mu_);
    const double latency =
        static_cast<double>(t_now >= t_arrival_ns ? t_now - t_arrival_ns : 0);
    stats_.processing_latency_ns.add(latency);
    proc_latency_p95_.add(latency);
    PRISM_OBS_HIST("core.ism.processing_latency_ns", latency);
    if (storage_) {
      storage_->write(r);
      ++stats_.records_stored;
    }
  }
  if (observer_) {
    observer_->lineage.stamp(obs_key(r), obs::PipelineStage::kIsmProcessed,
                             static_cast<double>(t_now));
    observer_->timeline.sample_changed(
        "ism.output_depth", static_cast<double>(t_now),
        static_cast<double>(output_->size() + 1));
  }
  output_->push(Timed{r, t_now});
}

void Ism::dispatch_main() {
  while (auto timed = output_->pop()) {
    if (fault_) {
      const auto f = fault_->consult(fault::FaultSite::kIsmDispatch, 0);
      if (f.kind == fault::FaultKind::kStall ||
          f.kind == fault::FaultKind::kSlowConsumer)
        fault::sleep_ns(f.stall_ns);
    }
    const std::uint64_t t_now = now_ns();
    PRISM_OBS_GAUGE_SET("core.ism.output_depth", output_->size());
    for (std::size_t i = 0; i < tools_.size(); ++i) {
      if (tool_dead_[i]) continue;
      if (fault_) {
        const auto f = fault_->consult(fault::FaultSite::kToolCallback,
                                       static_cast<std::uint32_t>(i));
        if (f.kind == fault::FaultKind::kCrash) {
          tool_dead_[i] = 1;
          PRISM_OBS_FLIGHT("tool_isolated", "fault_crash", i, 1);
          std::lock_guard lk(mu_);
          ++stats_.tools_failed;
          PRISM_OBS_COUNT("core.ism.tools_failed");
          continue;
        }
        if (f.kind == fault::FaultKind::kStall ||
            f.kind == fault::FaultKind::kSlowConsumer)
          fault::sleep_ns(f.stall_ns);
      }
      try {
        tools_[i]->consume(timed->record);
      } catch (...) {
        // A crashing tool must not take the IS down with it: isolate it and
        // keep dispatching to the survivors.
        tool_dead_[i] = 1;
        PRISM_OBS_FLIGHT("tool_isolated", "consume_threw", i, 1);
        std::lock_guard lk(mu_);
        ++stats_.tools_failed;
        PRISM_OBS_COUNT("core.ism.tools_failed");
      }
    }
    if (observer_) {
      observer_->lineage.complete(obs_key(timed->record),
                                  static_cast<double>(t_now));
      observer_->timeline.sample_changed(
          "ism.output_depth", static_cast<double>(t_now),
          static_cast<double>(output_->size()));
    }
    std::lock_guard lk(mu_);
    ++stats_.records_dispatched;
    PRISM_OBS_COUNT("core.ism.records_dispatched");
    stats_.dispatch_latency_ns.add(
        static_cast<double>(t_now >= timed->t_processed_ns
                                ? t_now - timed->t_processed_ns
                                : 0));
  }
}

void Ism::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  running_.store(false);
  // Close the inbound data links: the processor drains them and exits,
  // closing the output channel, which lets the dispatcher drain and exit.
  // Control links stay open through the drain so that tools (steering) can
  // still emit control messages for in-flight records; they close last.
  tp_.close_data_links();
  if (processor_.joinable()) processor_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard lk(mu_);
    if (storage_) storage_->close();
  }
  for (std::size_t i = 0; i < tools_.size(); ++i) {
    if (i < tool_dead_.size() && tool_dead_[i]) continue;  // already isolated
    try {
      tools_[i]->finish();
    } catch (...) {
      PRISM_OBS_FLIGHT("tool_isolated", "finish_threw", i, 1);
      std::lock_guard lk(mu_);
      ++stats_.tools_failed;
      PRISM_OBS_COUNT("core.ism.tools_failed");
    }
  }
  tp_.close_control_links();
}

IsmStats Ism::stats() const {
  std::lock_guard lk(mu_);
  IsmStats out = stats_;
  out.in_output = output_->size();
  if (proc_latency_p95_.count() > 0)
    out.processing_latency_p95_ns = proc_latency_p95_.value();
  return out;
}

}  // namespace prism::core
