#include "core/views.hpp"

#include <algorithm>
#include <stdexcept>

namespace prism::core {

std::string_view to_string(ViewAggregate a) {
  switch (a) {
    case ViewAggregate::kMean: return "mean";
    case ViewAggregate::kMax: return "max";
    case ViewAggregate::kMin: return "min";
    case ViewAggregate::kSum: return "sum";
    case ViewAggregate::kCount: return "count";
    case ViewAggregate::kRate: return "rate";
  }
  return "unknown";
}

MetricViewTool::MetricViewTool(
    std::vector<ViewDef> views,
    std::function<void(const trace::EventRecord&)> sink)
    : sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("MetricViewTool: null sink");
  if (views.empty()) throw std::invalid_argument("MetricViewTool: no views");
  for (auto& def : views) {
    if (def.name.empty())
      throw std::invalid_argument("MetricViewTool: unnamed view");
    if (def.window_ns == 0)
      throw std::invalid_argument("MetricViewTool: zero window in '" +
                                  def.name + "'");
    ViewState st;
    st.def = def;
    views_.push_back(std::move(st));
  }
}

bool MetricViewTool::matches(const ViewState& v, const trace::EventRecord& r) {
  if (r.tag != v.def.source_tag) return false;
  if (v.def.node_filter != 0xFFFFFFFFu && r.node != v.def.node_filter)
    return false;
  const bool value_view = v.def.aggregate != ViewAggregate::kCount &&
                          v.def.aggregate != ViewAggregate::kRate;
  if (value_view && r.kind != trace::EventKind::kSample) return false;
  return true;
}

void MetricViewTool::consume(const trace::EventRecord& r) {
  std::lock_guard lk(mu_);
  for (auto& v : views_) {
    if (!matches(v, r)) continue;
    // Tumbling windows by record time; late records fold into the current
    // window (the stream is causally, not totally, ordered).
    if (!v.window_open) {
      v.window_open = true;
      v.window_start = r.timestamp;
      v.count = 0;
      v.sum = 0;
      v.min = 0;
      v.max = 0;
    } else if (r.timestamp >= v.window_start + v.def.window_ns) {
      emit(v, v.window_start + v.def.window_ns);
      // Re-open at the boundary grid so rates stay comparable.
      const std::uint64_t periods =
          (r.timestamp - v.window_start) / v.def.window_ns;
      v.window_start += periods * v.def.window_ns;
      v.count = 0;
      v.sum = 0;
      v.min = 0;
      v.max = 0;
    }
    const double value = trace::unpack_double(r.payload);
    if (v.count == 0) {
      v.min = value;
      v.max = value;
    } else {
      v.min = std::min(v.min, value);
      v.max = std::max(v.max, value);
    }
    ++v.count;
    v.sum += value;
  }
}

void MetricViewTool::emit(ViewState& v, std::uint64_t window_end) {
  double out = 0;
  switch (v.def.aggregate) {
    case ViewAggregate::kMean:
      out = v.count ? v.sum / static_cast<double>(v.count) : 0.0;
      break;
    case ViewAggregate::kMax: out = v.max; break;
    case ViewAggregate::kMin: out = v.min; break;
    case ViewAggregate::kSum: out = v.sum; break;
    case ViewAggregate::kCount: out = static_cast<double>(v.count); break;
    case ViewAggregate::kRate:
      out = static_cast<double>(v.count) * 1e9 /
            static_cast<double>(v.def.window_ns);
      break;
  }
  trace::EventRecord derived;
  derived.timestamp = window_end;
  derived.node = v.def.node_filter == 0xFFFFFFFFu ? 0 : v.def.node_filter;
  derived.process = 0xFFFFFFFEu;  // views' own pseudo-process
  derived.kind = trace::EventKind::kSample;
  derived.tag = v.def.output_tag;
  derived.payload = trace::pack_double(out);
  derived.seq = v.seq++;
  ++v.windows;
  v.emitted.add(out);
  sink_(derived);
}

void MetricViewTool::finish() {
  std::lock_guard lk(mu_);
  for (auto& v : views_) {
    if (v.window_open && v.count > 0)
      emit(v, v.window_start + v.def.window_ns);
    v.window_open = false;
  }
}

std::uint64_t MetricViewTool::windows_emitted(const std::string& view) const {
  std::lock_guard lk(mu_);
  for (const auto& v : views_)
    if (v.def.name == view) return v.windows;
  throw std::out_of_range("MetricViewTool: unknown view " + view);
}

stats::Summary MetricViewTool::emitted_values(const std::string& view) const {
  std::lock_guard lk(mu_);
  for (const auto& v : views_)
    if (v.def.name == view) return v.emitted;
  throw std::out_of_range("MetricViewTool: unknown view " + view);
}

}  // namespace prism::core
