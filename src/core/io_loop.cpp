#include "core/io_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include "obs/obs.hpp"

namespace prism::core {

BatchArena& BatchArena::instance() {
  static BatchArena arena;
  return arena;
}

std::vector<trace::EventRecord> BatchArena::acquire(std::size_t records) {
  PRISM_OBS_COUNT("io.batch_arena.acquires");
  {
    std::lock_guard lk(mu_);
    ++stats_.acquires;
    if (!pool_.empty()) {
      ++stats_.reuses;
      std::vector<trace::EventRecord> out = std::move(pool_.back());
      pool_.pop_back();
      out.resize(records);
      PRISM_OBS_COUNT("io.batch_arena.reuses");
      return out;
    }
  }
  return std::vector<trace::EventRecord>(records);
}

std::vector<trace::EventRecord> BatchArena::acquire_reserved(
    std::size_t capacity) {
  std::vector<trace::EventRecord> out = acquire(0);
  if (out.capacity() < capacity) out.reserve(capacity);
  return out;
}

void BatchArena::release(std::vector<trace::EventRecord>&& storage) {
  if (storage.capacity() == 0) return;
  storage.clear();
  std::lock_guard lk(mu_);
  if (pool_.size() >= kMaxPooled) return;  // freed on scope exit
  ++stats_.releases;
  pool_.push_back(std::move(storage));
}

BatchArena::Stats BatchArena::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void append_frame(std::vector<char>& wire, const DataBatch& b,
                  bool corrupt_magic) {
  FrameHeader hdr;
  hdr.source_node = b.source_node;
  hdr.t_sent_ns = b.t_sent_ns;
  hdr.record_count = b.records.size();
  if (corrupt_magic) hdr.magic ^= 0xFFu;
  const std::size_t off = wire.size();
  wire.resize(off + frame_wire_size(b));
  std::memcpy(wire.data() + off, &hdr, sizeof hdr);
  if (!b.records.empty())
    std::memcpy(wire.data() + off + sizeof hdr, b.records.data(),
                b.records.size() * sizeof(trace::EventRecord));
}

namespace {

/// Parks until `fd` raises `events` (or an error condition).  Returns false
/// when poll itself failed hard — the caller's next read/write surfaces the
/// real errno.
bool park(int fd, short events) {
  struct pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int r = ::poll(&pfd, 1, -1);
    if (r >= 0) return true;
    if (errno != EINTR) return false;
  }
}

}  // namespace

std::size_t io_write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, p + written, len - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    // A 0-byte write is a hard link failure on the targets that produce it;
    // retrying would spin forever without moving a byte.
    if (n == 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!park(fd, POLLOUT)) break;
      continue;
    }
    break;  // EPIPE, EBADF, ECONNRESET, ...
  }
  return written;
}

void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

std::size_t io_read_full(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!park(fd, POLLIN)) break;
      continue;
    }
    break;
  }
  return got;
}

}  // namespace prism::core
