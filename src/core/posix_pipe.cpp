#include "core/posix_pipe.hpp"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <system_error>
#include <vector>

namespace prism::core {

namespace {

constexpr std::uint32_t kFrameMagic = 0x50495045;  // "PIPE"

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t source_node = 0;
  std::uint64_t t_sent_ns = 0;
  std::uint64_t record_count = 0;
};

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

PosixPipeLink::PosixPipeLink(DataLink& deliver_to) : out_(deliver_to) {
  int fds[2];
  if (::pipe(fds) != 0)
    throw std::system_error(errno, std::generic_category(), "pipe");
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  // Writes to a closed pipe must surface as errors, not SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  reader_ = std::thread([this] { reader_main(); });
}

PosixPipeLink::~PosixPipeLink() {
  close_writer();
  if (reader_.joinable()) reader_.join();
  if (read_fd_ >= 0) ::close(read_fd_);
}

bool PosixPipeLink::send(const DataBatch& batch) {
  std::lock_guard lk(write_mu_);
  if (writer_closed_.load()) return false;
  FrameHeader hdr;
  hdr.source_node = batch.source_node;
  hdr.t_sent_ns = batch.t_sent_ns;
  hdr.record_count = batch.records.size();
  if (!write_all(write_fd_, &hdr, sizeof hdr)) return false;
  if (!batch.records.empty() &&
      !write_all(write_fd_, batch.records.data(),
                 batch.records.size() * sizeof(trace::EventRecord)))
    return false;
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(sizeof hdr +
                       batch.records.size() * sizeof(trace::EventRecord),
                   std::memory_order_relaxed);
  return true;
}

void PosixPipeLink::close_writer() {
  std::lock_guard lk(write_mu_);
  if (!writer_closed_.exchange(true) && write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void PosixPipeLink::reader_main() {
  for (;;) {
    FrameHeader hdr;
    if (!read_all(read_fd_, &hdr, sizeof hdr)) break;  // EOF or error
    if (hdr.magic != kFrameMagic) break;               // corrupt stream
    DataBatch batch;
    batch.source_node = hdr.source_node;
    batch.t_sent_ns = hdr.t_sent_ns;
    batch.records.resize(hdr.record_count);
    if (hdr.record_count > 0 &&
        !read_all(read_fd_, batch.records.data(),
                  hdr.record_count * sizeof(trace::EventRecord)))
      break;
    delivered_.fetch_add(1, std::memory_order_relaxed);
    out_.push(Message(std::move(batch)));
  }
}

}  // namespace prism::core
