#include "core/posix_pipe.hpp"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "core/clock.hpp"
#include "core/io_loop.hpp"

// Framing and the fd read/write loops live in core/io_loop.hpp, shared with
// the socket transport (the two links are wire-compatible).  The shared
// write loop also fixes a long-standing hazard here: a 0-byte ::write
// return (possible on some targets) used to spin this writer forever; it is
// now a hard link failure surfacing as a short write.

namespace prism::core {

PosixPipeLink::PosixPipeLink(DataLink& deliver_to,
                             std::uint64_t max_frame_records)
    : out_(deliver_to), max_frame_records_(max_frame_records) {
  if (max_frame_records_ == 0)
    throw std::invalid_argument("PosixPipeLink: max_frame_records 0");
  int fds[2];
  if (::pipe(fds) != 0)
    throw std::system_error(errno, std::generic_category(), "pipe");
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  // Writes to a closed pipe must surface as EPIPE, not SIGPIPE.  Installed
  // once per process (shared with the socket transport).
  ignore_sigpipe_once();
  reader_ = std::thread([this] { reader_main(); });
}

PosixPipeLink::~PosixPipeLink() {
  close_writer();
  if (reader_.joinable()) reader_.join();
  if (read_fd_ >= 0) ::close(read_fd_);
}

void PosixPipeLink::set_fault(fault::FaultInjector* f,
                              fault::RetryPolicy retry) {
  std::lock_guard lk(write_mu_);
  fault_ = f;
  retry_ = retry;
  backoff_rng_ =
      stats::Rng(stats::Rng::hash_seed(f ? f->seed() : 0, 0x919eull));
}

void PosixPipeLink::lose_batch(const DataBatch& batch, obs::LossSite site) {
  if (!observer_) return;
  const auto t = static_cast<double>(now_ns());
  for (const auto& r : batch.records)
    observer_->lineage.lose(obs::lineage_key(r.node, r.process, r.seq), site,
                            t);
}

void PosixPipeLink::abort_stream_locked(const DataBatch& batch) {
  frames_aborted_.fetch_add(1, std::memory_order_relaxed);
  send_failures_.fetch_add(1, std::memory_order_relaxed);
  stream_corrupt_.store(true, std::memory_order_relaxed);
  if (!writer_closed_.exchange(true) && write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
  lose_batch(batch, obs::LossSite::kFrameCorrupt);
}

bool PosixPipeLink::send(const DataBatch& batch) {
  std::lock_guard lk(write_mu_);
  if (writer_closed_.load() || stream_corrupt_.load()) return false;

  // Send-attempt faults: injected transient failures happen before any byte
  // hits the wire, so they are cleanly retryable.
  std::uint32_t attempt = 0;
  for (;;) {
    if (!fault_) break;
    const auto f = fault_->consult(fault::FaultSite::kPipeSend,
                                   batch.source_node);
    if (f.kind == fault::FaultKind::kStall ||
        f.kind == fault::FaultKind::kSlowConsumer)
      fault::sleep_ns(f.stall_ns);
    if (f.kind != fault::FaultKind::kSendFail) break;
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++attempt >= retry_.max_attempts) {
      lose_batch(batch, obs::LossSite::kRetryExhausted);
      return false;
    }
    fault::sleep_ns(retry_.backoff_ns(attempt, backoff_rng_));
  }

  FrameHeader hdr;
  hdr.source_node = batch.source_node;
  hdr.t_sent_ns = batch.t_sent_ns;
  hdr.record_count = batch.records.size();

  // Frame-boundary faults.
  if (fault_) {
    const auto f = fault_->consult(fault::FaultSite::kPipeFrame,
                                   batch.source_node);
    if (f.kind == fault::FaultKind::kPartialFrame) {
      // Simulate the writer dying mid-frame: half the serialized frame hits
      // the wire, then the stream is declared desynchronized.
      std::vector<char> wire;
      append_frame(wire, batch);
      io_write_all(write_fd_, wire.data(), wire.size() / 2);
      abort_stream_locked(batch);
      return false;
    }
    if (f.kind == fault::FaultKind::kFrameCorrupt) {
      // Flip the magic and ship the frame anyway: the reader must detect
      // the corruption; the records are gone either way.
      hdr.magic ^= 0xFFu;
    }
  }
  const bool wire_corrupt = hdr.magic != kFrameMagic;

  const std::size_t hdr_written = io_write_all(write_fd_, &hdr, sizeof hdr);
  if (hdr_written != sizeof hdr) {
    if (hdr_written == 0) {
      // Nothing landed: the stream is still at a frame boundary (typically
      // EPIPE from a dead reader).  Clean, non-desyncing failure.
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    abort_stream_locked(batch);
    return false;
  }
  if (!batch.records.empty()) {
    const std::size_t payload =
        batch.records.size() * sizeof(trace::EventRecord);
    if (io_write_all(write_fd_, batch.records.data(), payload) != payload) {
      // The header (and possibly part of the payload) is on the wire but
      // the frame is incomplete — every later byte would be misparsed.
      abort_stream_locked(batch);
      return false;
    }
  }
  if (wire_corrupt) {
    // The full frame shipped, but with a bad magic: the records are lost at
    // the reader.  Account them on the writer side, where their identity is
    // still known.
    frames_aborted_.fetch_add(1, std::memory_order_relaxed);
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    lose_batch(batch, obs::LossSite::kFrameCorrupt);
    return false;
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(sizeof hdr +
                       batch.records.size() * sizeof(trace::EventRecord),
                   std::memory_order_relaxed);
  return true;
}

bool PosixPipeLink::inject_raw(const void* data, std::size_t len) {
  std::lock_guard lk(write_mu_);
  if (writer_closed_.load()) return false;
  return io_write_all(write_fd_, data, len) == len;
}

void PosixPipeLink::close_writer() {
  std::lock_guard lk(write_mu_);
  if (!writer_closed_.exchange(true) && write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void PosixPipeLink::reader_declare_corrupt() {
  frames_corrupt_.fetch_add(1, std::memory_order_relaxed);
  stream_corrupt_.store(true, std::memory_order_relaxed);
  // Stop consuming a stream we cannot parse, and close the read end so any
  // writer blocked on a full kernel buffer fails with EPIPE instead of
  // hanging forever.
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

void PosixPipeLink::reader_main() {
  for (;;) {
    FrameHeader hdr;
    const std::size_t got = io_read_full(read_fd_, &hdr, sizeof hdr);
    if (got == 0) break;  // clean EOF at a frame boundary
    if (got != sizeof hdr) {  // writer died mid-header
      reader_declare_corrupt();
      break;
    }
    if (hdr.magic != kFrameMagic) {
      reader_declare_corrupt();
      break;
    }
    if (hdr.record_count > max_frame_records_) {
      // The header is wire input, not something to trust: an insane count
      // here used to drive a multi-GB resize before the first payload byte
      // was read.
      reader_declare_corrupt();
      break;
    }
    DataBatch batch;
    batch.source_node = hdr.source_node;
    batch.t_sent_ns = hdr.t_sent_ns;
    batch.records.resize(hdr.record_count);
    if (hdr.record_count > 0) {
      const std::size_t want = hdr.record_count * sizeof(trace::EventRecord);
      if (io_read_full(read_fd_, batch.records.data(), want) != want) {
        reader_declare_corrupt();  // writer died mid-payload
        break;
      }
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    out_.push(Message(std::move(batch)));
  }
}

}  // namespace prism::core
