// Sharded, hierarchical ISM federation (DESIGN.md §16).
//
// The paper's own evaluation flags the logically centralized ISM as the
// scaling bottleneck of the instrumentation system (§3.2.2: "the ISM is
// another server that accepts the instrumentation data from all the
// distributed LISs"), and the large-distributed-systems tool literature
// resolves it the same way every time: pre-reduce per cluster, merge
// causally at a root.  This module builds that two-level topology out of
// the live tier's existing parts:
//
//   LIS x N  --cluster TP-->  AggregatorIsm x S  --root TP-->  root Ism
//
//   * ShardRouter assigns every LIS node to one aggregator shard with
//     consistent hashing (virtual-node ring), so a record lineage — the
//     (node, process) stream — lands wholly on one aggregator and program
//     order can be enforced there.
//   * AggregatorIsm consumes its cluster's LIS streams, causally
//     pre-reduces them (program order + intra-shard message order; a recv
//     from another shard is waived locally and ordered at the root), and
//     forwards the ordered stream root-ward re-batched into fixed-size
//     uplink batches over a real transport (pipe / socket / shm).
//   * The root Ism (the existing class, MISO across shards) performs the
//     global gap-tolerant merge; a dead aggregator expires as a whole
//     shard (CausalReorderer::expire_nodes).
//
// Conservation is exact at every level and attributed exactly once:
//   LIS:        recorded == forwarded + dropped + buffered + lost_send
//               + lost_dead
//   aggregator: received == forwarded + lost_uplink + lost_dead
//               + still_held + staged
//   root ISM:   received == dispatched + still_held + in_output
// and the federation-boundary loss site (forwarded by a shard, destroyed
// on the root-bound uplink) is charged to the shard's ledger only — the
// root never saw those records.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/environment.hpp"
#include "core/ism.hpp"
#include "core/lis.hpp"
#include "core/transfer_protocol.hpp"
#include "trace/causal.hpp"

namespace prism::core {

/// Assigns LIS nodes to aggregator shards.  ShardAssign::kHash uses a
/// consistent-hash ring with `virtual_nodes` points per shard: the ring for
/// S shards is exactly the ring for S+1 shards minus shard S's points, so
/// growing or shrinking the shard count only remaps the keys of the shards
/// that appeared or vanished.  ShardAssign::kModulo is the plain
/// node-mod-shards baseline.
class ShardRouter {
 public:
  ShardRouter(std::uint32_t shards, std::uint32_t virtual_nodes = 64,
              ShardAssign assign = ShardAssign::kHash);

  std::uint32_t shard_for(std::uint32_t node) const;
  std::uint32_t shards() const { return shards_; }
  ShardAssign assign() const { return assign_; }

 private:
  std::uint32_t shards_;
  ShardAssign assign_;
  /// (point hash, shard), sorted by hash.  Empty for kModulo.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// Aggregator ledger.  Exact at quiescence (after stop()); the invariant
/// mirrors IsmStats::conserved one level down.
struct AggregatorStats {
  std::uint64_t batches_received = 0;
  std::uint64_t records_received = 0;
  std::uint64_t batches_forwarded = 0;   ///< uplink batches delivered
  std::uint64_t records_forwarded = 0;   ///< records delivered root-ward
  /// Forwarded by this shard but destroyed on the root-bound uplink
  /// (closed link or exhausted retries) — the federation-boundary loss
  /// site, charged here exactly once.
  std::uint64_t lost_uplink = 0;
  /// Destroyed with this aggregator's death: the staged batch, the
  /// pre-reducer's held records, and everything drained after the crash.
  std::uint64_t lost_dead = 0;
  std::uint64_t still_held = 0;          ///< pre-reducer residue (snapshot)
  std::uint64_t staged = 0;              ///< staging occupancy (snapshot)
  std::uint64_t held_back = 0;           ///< pre-reducer hold-backs, total
  std::uint64_t expired_released = 0;    ///< force-released for dead sources
  std::uint64_t sources_dead = 0;

  bool conserved() const {
    return records_received == records_forwarded + lost_uplink + lost_dead +
                                   still_held + staged;
  }
};

/// One per-cluster aggregator ISM: consumes the cluster TP's receive links,
/// causally pre-reduces (scoped to its member nodes), and forwards the
/// ordered stream to the root over one uplink data link in fixed-size
/// batches.  The uplink send is fault-gated at FaultSite::kAggForward
/// (node = shard id): injected crashes kill the whole aggregator, after
/// which it keeps draining its cluster links as a tombstone, attributing
/// every arriving record as an agg_dead loss so the LIS ledgers — and the
/// end-to-end exactness invariant — stay intact.
class AggregatorIsm {
 public:
  /// `cluster_tp` carries the member LISes' streams; `uplink` is the root
  /// TP data link this shard ships on.  Both must outlive the aggregator.
  AggregatorIsm(std::uint32_t shard, TransferProtocol& cluster_tp,
                DataLink& uplink, std::vector<std::uint32_t> members,
                std::size_t batch_records, bool causal_ordering);
  ~AggregatorIsm();
  AggregatorIsm(const AggregatorIsm&) = delete;
  AggregatorIsm& operator=(const AggregatorIsm&) = delete;

  void start();
  /// Closes the cluster data links, drains in-flight batches, ships the
  /// staging remainder and joins the processor.  Idempotent.  Member LISes
  /// must be stopped first.
  void stop();

  std::uint32_t shard() const { return shard_; }
  const std::vector<std::uint32_t>& members() const { return members_; }
  AggregatorStats stats() const;
  /// True once the aggregator died (injected crash at kAggForward).
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  /// Declares a member node dead (its remaining records are known lost):
  /// the pre-reducer force-releases what the death stranded at drain time
  /// instead of stranding it as residue.
  void mark_source_dead(std::uint32_t node);

  /// Attaches the model-time observability sink (may be null).  The
  /// aggregator stamps no pipeline stages — it is transparent in the
  /// lineage chain — but attributes every record it destroys
  /// (agg_uplink / agg_dead / agg_queue).  Call before start().
  void set_observer(obs::PipelineObserver* o) { observer_ = o; }

  /// Attaches the fault plane (may be null).  Consulted at kAggForward
  /// once per uplink batch (plus once per retry).  Call before start().
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

 private:
  void processor_main();
  void consume_batch(DataBatch&& batch);
  /// Appends one causally-released record to the staging batch, shipping
  /// when it reaches batch_records_.  Dead aggregators count the record as
  /// an agg_dead loss instead.
  void stage(const trace::EventRecord& r);
  /// Ships the staged records root-ward through the fault plane.
  void ship();
  /// Post-crash cleanup, run at the processor loop level (never from
  /// inside a reorderer callback): accounts the pre-reducer's held records
  /// as agg_dead losses.
  void finalize_death();

  std::uint32_t shard_;
  /// Lineage keys of the batch being shipped, reused across ships so an
  /// observed uplink send does not re-allocate the key list every time.
  std::vector<obs::LineageKey> keys_scratch_;
  TransferProtocol& tp_;
  DataLink& uplink_;
  std::vector<std::uint32_t> members_;
  std::size_t batch_records_;
  bool causal_;
  std::unique_ptr<trace::CausalReorderer> reorderer_;
  std::vector<trace::EventRecord> staging_;
  std::thread processor_;
  bool started_ = false;
  bool stopped_ = false;
  mutable std::mutex mu_;
  AggregatorStats stats_;
  std::vector<std::uint32_t> dead_sources_;  ///< guarded by mu_
  obs::PipelineObserver* observer_ = nullptr;
  std::atomic<fault::FaultInjector*> fault_{nullptr};
  fault::RetryPolicy retry_;
  std::mutex fault_mu_;
  stats::Rng backoff_rng_{0};
  std::atomic<bool> dead_{false};
  bool death_finalized_ = false;  ///< processor-thread-only
};

/// The two-level integrated environment: per-node LISes partitioned into
/// clusters by a ShardRouter, one AggregatorIsm per cluster, and a root Ism
/// merging the shard streams — the federation counterpart of
/// IntegratedEnvironment, scaling the IS tier to hundreds-to-thousands of
/// LIS nodes.  Requires config.federation.shards >= 1; both levels run real
/// transports (cluster level: config.tp_flavor; root level:
/// config.federation.root_tp, defaulting to the cluster flavor).
class FederatedEnvironment {
 public:
  explicit FederatedEnvironment(EnvironmentConfig config);
  ~FederatedEnvironment();
  FederatedEnvironment(const FederatedEnvironment&) = delete;
  FederatedEnvironment& operator=(const FederatedEnvironment&) = delete;

  /// Tools attach to the root ISM (before start()).
  void attach_tool(std::shared_ptr<Tool> tool);

  void start();
  /// Stops LISes (flushing), then the aggregators (draining + final uplink
  /// flush), expires dead shards at the root, then stops the root ISM.
  void stop();

  Lis& lis(std::uint32_t node);
  Ism& root_ism() { return *root_ism_; }
  AggregatorIsm& aggregator(std::uint32_t shard);
  TransferProtocol& root_tp() { return *root_tp_; }
  TransferProtocol& cluster_tp(std::uint32_t shard);
  const ShardRouter& router() const { return router_; }
  const EnvironmentConfig& config() const { return config_; }

  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(aggregators_.size());
  }
  std::uint32_t shard_of(std::uint32_t node) const;
  const std::vector<std::uint32_t>& shard_members(std::uint32_t shard) const;

  /// Hot path: record an event through node `node`'s LIS.
  void record(std::uint32_t node, const trace::EventRecord& r) {
    lis(node).record(r);
  }
  void record(const trace::EventRecord& r) { lis(r.node).record(r); }

  void flush_all();

  LisStats total_lis_stats() const;
  LisStats shard_lis_stats(std::uint32_t shard) const;
  AggregatorStats aggregator_stats(std::uint32_t shard) const;

  /// Federation-wide degradation roll-up: LIS-level losses, both levels'
  /// wire losses, the federation-boundary uplink site, dead shards, and
  /// hold-back expiry at both the aggregators and the root.
  DegradationReport degradation() const;
  /// One shard's slice of the report (its member LISes, its cluster wire,
  /// its aggregator's uplink/death ledger).
  DegradationReport shard_degradation(std::uint32_t shard) const;

  void set_observer(obs::PipelineObserver* o);
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

 private:
  EnvironmentConfig config_;
  ShardRouter router_;
  std::vector<std::vector<std::uint32_t>> members_;  ///< per-shard node ids
  std::vector<std::uint32_t> node_shard_;            ///< node -> shard
  std::vector<std::uint32_t> node_local_;            ///< node -> cluster idx
  std::unique_ptr<TransferProtocol> root_tp_;
  std::unique_ptr<Ism> root_ism_;
  std::vector<std::unique_ptr<TransferProtocol>> cluster_tps_;
  std::vector<std::unique_ptr<AggregatorIsm>> aggregators_;
  FlushCoordinator coordinator_;
  ProbeRegistry probe_registry_;
  std::vector<std::unique_ptr<Lis>> lises_;  ///< indexed by global node id
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace prism::core
