// The Transfer Protocol (TP) component of the generic IS model (§2.2.3).
//
// "Instrumentation data are transferred from the LIS to the ISM and further
// to various analysis and visualization tools ... Data transfer to the tools
// is typically accompanied by an exchange of control signals between the ISM
// and a tool ... Additionally, control messages may need to be passed between
// the ISM and concurrent application processes (directly or via the LIS)."
//
// The TP here is a consistent message format (data batches + control
// messages) over bounded blocking links.  Links model the OS IPC flavors of
// Fig. 3 (pipe / socket / RPC) — semantically they differ only in the
// descriptive flavor tag and default capacity; all provide FIFO,
// finite-capacity, blocking delivery, which is the behavior every model in
// the paper depends on.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <variant>
#include <vector>

#include "core/channel.hpp"
#include "fault/fault.hpp"
#include "obs/timeline.hpp"
#include "trace/record.hpp"

namespace prism::obs {
struct PipelineObserver;
}

namespace prism::core {

/// A batch of instrumentation data in flight from a LIS to the ISM.
///
/// Storage-recycling contract: producers draw `records` capacity from
/// core::BatchArena (acquire/acquire_reserved) and the terminal consumer —
/// the ISM, after it has copied the records out — hands the vector back
/// with BatchArena::release.  Once the pool is warm, the live tier's
/// per-batch path performs no heap allocation; a batch destroyed on an
/// error path simply frees its storage, which is safe but unpooled.
struct DataBatch {
  std::uint32_t source_node = 0;
  /// Physical time the batch entered the TP (ns), for latency accounting.
  std::uint64_t t_sent_ns = 0;
  std::vector<trace::EventRecord> records;
};

/// Control-plane message kinds.
enum class ControlKind : std::uint8_t {
  kStart,                 ///< begin data collection
  kStop,                  ///< stop data collection
  kFlushAll,              ///< FAOF broadcast: flush local buffers now
  kSetSamplingPeriod,     ///< value = new period (ns)
  kEnableInstrumentation, ///< value = metric/probe id
  kDisableInstrumentation,///< value = metric/probe id
  kShutdown,              ///< tear down the receiver
};
inline constexpr std::size_t kControlKindCount = 7;

std::string_view to_string(ControlKind k);

/// Control kinds whose loss breaks the IS lifecycle rather than merely
/// degrading a policy: kShutdown leaks the receiver's threads, a dropped
/// kFlushAll strands FAOF buffers, a dropped kStop keeps collection running.
/// broadcast() delivers these with bounded blocking instead of try_push.
bool lifecycle_critical(ControlKind k);

struct ControlMessage {
  ControlKind kind = ControlKind::kStart;
  std::uint32_t target_node = 0;
  double value = 0.0;
};

using Message = std::variant<DataBatch, ControlMessage>;

/// One FIFO link of the transfer protocol.
using DataLink = Channel<Message>;
using ControlLink = Channel<ControlMessage>;

/// IPC flavor tags of Fig. 3 ("RPC / Sockets / Pipes") plus the
/// custom-protocol option the paper notes for VIZIR.  kSocket and kShm are
/// real backends: enable_socket_backend() routes the data plane over
/// OS-level stream sockets (see socket_link.hpp), enable_shm_backend() over
/// lock-free SPSC rings in shared-memory segments (see shm_link.hpp).
/// kRpc / kCustom remain descriptive tags over in-process links.
enum class TpFlavor : std::uint8_t { kPipe, kSocket, kRpc, kCustom, kShm };

std::string_view to_string(TpFlavor f);

/// Address family for the real socket backend.
enum class SocketDomain : std::uint8_t {
  kUnix,         ///< AF_UNIX stream pair (default; no network stack)
  kTcpLoopback,  ///< TCP over 127.0.0.1 (exercises the full inet path)
};

std::string_view to_string(SocketDomain d);

/// Tuning for the socket transport.
struct SocketOptions {
  SocketDomain domain = SocketDomain::kUnix;
  /// Upper bound on records per frame accepted from the wire (the header is
  /// untrusted input; same bound check as the pipe link).
  std::uint64_t max_frame_records = 1ull << 20;
  /// Write-side batching: a link's pump coalesces queued DataBatch frames
  /// into one write syscall until the serialized bytes reach this budget.
  std::size_t coalesce_byte_budget = 64 * 1024;
};

/// Tuning for the shared-memory transport.
struct ShmOptions {
  /// Bytes of ring data area per data link.  Must be a nonzero power of two
  /// (the ring maps positions with a mask) and large enough for one
  /// single-record frame; link setup rejects anything else.
  std::size_t ring_capacity = 1 << 20;
  /// Upper bound on records per frame accepted from the ring (the header is
  /// untrusted shared state; same bound check as the pipe and socket links).
  std::uint64_t max_frame_records = 1ull << 20;
};

class SocketTransport;  // socket_link.hpp
class SocketLink;
class ShmTransport;  // shm_link.hpp
class ShmLink;

/// Wiring for one integrated environment: data links from each LIS toward
/// the ISM and a control link back to each LIS.  The number of data links is
/// an ISM input-buffer configuration decision (SISO shares one link; MISO
/// uses one per node) — see IsmConfig.
class TransferProtocol {
 public:
  TransferProtocol(TpFlavor flavor, std::size_t nodes,
                   std::size_t data_links, std::size_t link_capacity);
  ~TransferProtocol();

  TpFlavor flavor() const { return flavor_; }
  std::size_t nodes() const { return controls_.size(); }
  std::size_t data_link_count() const { return datas_.size(); }

  /// Data link that node `node` should send on (SISO maps all nodes to
  /// link 0; MISO maps node i to link i).
  DataLink& data_link_for(std::uint32_t node);
  DataLink& data_link(std::size_t index) { return *datas_.at(index); }

  ControlLink& control_link(std::uint32_t node);

  /// Makes the kSocket flavor real: each data link grows a pump that
  /// serializes its batches over an OS-level stream socket, and a shared
  /// poll()-driven reader delivers the frames into per-link egress buffers.
  /// Senders keep pushing into data_link_for() unchanged; the ISM must
  /// consume receive_link() instead of data_link().  The control plane
  /// stays in-process (§2.2.3 allows direct ISM<->LIS control).  Call once,
  /// before any traffic; requires flavor() == kSocket.
  void enable_socket_backend(const SocketOptions& opts = {});
  bool socket_backend_enabled() const { return socket_ != nullptr; }

  /// Makes the kShm flavor real: each data link grows a pump that frames its
  /// batches into a lock-free SPSC ring in a shared-memory segment, and a
  /// shared polling reader delivers the frames into per-link egress buffers.
  /// Same consumption contract as the socket backend: the ISM must consume
  /// receive_link().  Call once, before any traffic; requires
  /// flavor() == kShm.  Throws std::invalid_argument on a ring capacity that
  /// is zero, not a power of two, or too small for one record frame.
  void enable_shm_backend(const ShmOptions& opts = {});
  bool shm_backend_enabled() const { return shm_ != nullptr; }

  /// Link the ISM consumes: the enabled backend's egress buffer (socket or
  /// shm), else the data link itself.
  DataLink& receive_link(std::size_t index);

  /// Socket-backend introspection (null / throws when not enabled).
  SocketTransport* socket_transport() { return socket_.get(); }
  SocketLink& socket_link(std::size_t index);

  /// Shm-backend introspection (null / throws when not enabled).
  ShmTransport* shm_transport() { return shm_.get(); }
  ShmLink& shm_link(std::size_t index);

  /// Broadcasts a control message to every node's control link.
  /// Lifecycle-critical kinds (see lifecycle_critical()) block for up to the
  /// control send timeout per node — and retry injected failures per the
  /// attached RetryPolicy — before a drop is declared; other kinds stay
  /// best-effort try_push.  Every drop is attributed to its ControlKind in
  /// control_dropped().
  void broadcast(const ControlMessage& m);

  /// Drops of control messages, attributed per kind (satellite of the fault
  /// plane: a dropped kShutdown is a bug, a dropped kSetSamplingPeriod is a
  /// policy hiccup — they must be distinguishable).
  std::uint64_t control_dropped(ControlKind k) const {
    return control_dropped_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t control_dropped_total() const;

  /// Bounded blocking budget per node for lifecycle-critical broadcasts.
  void set_control_send_timeout_ns(std::uint64_t ns) {
    control_send_timeout_ns_ = ns;
  }

  /// Attaches the fault plane (may be null to detach).  kTpControl is
  /// consulted once per node per broadcast; injected send failures on
  /// critical kinds are retried per `retry`.  Forwarded to the enabled
  /// backend (kSocketSend / kSocketFrame or kShmPush / kShmFrame sites).
  void set_fault(fault::FaultInjector* f, fault::RetryPolicy retry = {});

  /// Attaches the observability sink (may be null).  Only the real
  /// backends consume it (wire losses need attribution); the in-process
  /// links never destroy records.
  void set_observer(obs::PipelineObserver* o);

  /// Samples every data link's queue depth into `tl` at time `t` (series
  /// "tp.link<i>.depth", on-change).  No-op when `tl` is null.
  void sample_depths(obs::Timeline* tl, double t) const;

  /// Closes every link (shutdown path).
  void close_all();
  /// Closes only the data plane (lets control messages emitted while the
  /// ISM drains — e.g. steering actions — still land in the control links).
  void close_data_links();
  void close_control_links();

 private:
  bool deliver_control(std::size_t node, const ControlMessage& m);

  TpFlavor flavor_;
  std::vector<std::unique_ptr<DataLink>> datas_;
  std::vector<std::unique_ptr<ControlLink>> controls_;
  std::array<std::atomic<std::uint64_t>, kControlKindCount> control_dropped_{};
  std::uint64_t control_send_timeout_ns_ = 100'000'000;  // 100 ms
  fault::FaultInjector* fault_ = nullptr;
  fault::RetryPolicy retry_;
  /// Guards backoff_rng_ across concurrent broadcasts (control plane is
  /// cold; one lock is fine).
  std::mutex control_mu_;
  stats::Rng backoff_rng_{0};
  obs::PipelineObserver* observer_ = nullptr;
  /// Real OS-socket data plane (kSocket flavor only; see socket_link.hpp).
  std::unique_ptr<SocketTransport> socket_;
  /// Shared-memory data plane (kShm flavor only; see shm_link.hpp).
  std::unique_ptr<ShmTransport> shm_;
};

}  // namespace prism::core
