// Textual configuration for the integrated environment — the rapid-
// prototyping surface of the Figure-1 workflow: "the IS is configurable, so
// different management policies can be instituted dynamically" (§3.3).  A
// config is a line-oriented `key = value` file:
//
//   # prism IS configuration
//   nodes = 8
//   processes_per_node = 2
//   lis = daemon                  # buffered | forwarding | daemon
//   flush_policy = faof           # fof | faof | threshold | adaptive
//   buffer_capacity = 256
//   flush_threshold = 0.75
//   adaptive_target_flush_ns = 5000000
//   sampling_period_ns = 2000000
//   pipe_capacity = 512
//   daemon_blocks_app = true
//   tp = pipe                     # pipe | socket | rpc | custom
//   link_capacity = 2048
//   ism_input = miso              # siso | miso
//   causal_ordering = true
//   output_capacity = 8192
//   storage_path = /tmp/run.trc
//   ism_shards = 8                # 0 = flat IS; >= 1 = two-level federation
//   shard_virtual_nodes = 64      # consistent-hash ring points per shard
//   shard_assign = hash           # hash | modulo
//   root_tp = socket              # aggregator->root transport (default: tp)
//   agg_batch_records = 256       # aggregator uplink batch size
//
// Unknown keys and malformed values are errors (with line numbers): a
// config that silently ignores typos is how an evaluation runs the wrong
// experiment.
#pragma once

#include <stdexcept>
#include <string>

#include "core/environment.hpp"

namespace prism::core {

class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::size_t line, const std::string& message)
      : std::runtime_error("config:" + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a configuration text into an EnvironmentConfig (unset keys keep
/// their defaults).  Throws ConfigError on unknown keys or bad values.
EnvironmentConfig parse_environment_config(const std::string& text);

/// Serializes a configuration as parseable text (every key explicit).
std::string serialize_environment_config(const EnvironmentConfig& config);

}  // namespace prism::core
