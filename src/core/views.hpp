// Falcon-style metric views (§4 / Table 8: Falcon specifies monitoring with
// "a low-level sensor specification language and a higher level view
// specification language").  A *view* is a derived metric computed on-line
// from the ISM's ordered record stream — windowed aggregates of raw samples
// or event rates — re-emitted as kSample records so downstream tools
// (thresholds, steering, event-action rules) compose on top of them.
//
// MetricViewTool evaluates a set of view definitions; each view owns a
// tumbling window (by record timestamp) and emits one derived sample per
// window into the view sink.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/tool.hpp"
#include "stats/summary.hpp"

namespace prism::core {

enum class ViewAggregate : std::uint8_t {
  kMean,   ///< mean of sample values in the window
  kMax,    ///< max sample value
  kMin,    ///< min sample value
  kSum,    ///< sum of sample values
  kCount,  ///< number of matching records (any kind)
  kRate,   ///< matching records per second
};

std::string_view to_string(ViewAggregate a);

struct ViewDef {
  std::string name;
  /// Records feeding the view: kSample records with this tag (for value
  /// aggregates) or any record with this tag (for kCount / kRate).
  std::uint16_t source_tag = 0;
  /// kCount/kRate accept any kind; value aggregates require kSample.
  ViewAggregate aggregate = ViewAggregate::kMean;
  /// Tumbling window length (ns of record time).
  std::uint64_t window_ns = 1'000'000'000;
  /// Tag of the emitted derived samples.
  std::uint16_t output_tag = 0;
  /// Restrict to one node (nullopt-like: 0xFFFFFFFF = all nodes).
  std::uint32_t node_filter = 0xFFFFFFFFu;
};

class MetricViewTool final : public Tool {
 public:
  /// Derived samples are delivered to `sink` (e.g. another tool, a steering
  /// policy, or back into a LIS for re-injection).
  MetricViewTool(std::vector<ViewDef> views,
                 std::function<void(const trace::EventRecord&)> sink);

  std::string_view name() const override { return "metric_views"; }
  void consume(const trace::EventRecord& r) override;
  /// Flushes all open windows (end of run).
  void finish() override;

  /// Windows emitted per view.
  std::uint64_t windows_emitted(const std::string& view) const;
  /// Summary of a view's emitted values.
  stats::Summary emitted_values(const std::string& view) const;

 private:
  struct ViewState {
    ViewDef def;
    bool window_open = false;
    std::uint64_t window_start = 0;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::uint64_t seq = 0;
    std::uint64_t windows = 0;
    stats::Summary emitted;
  };

  void emit(ViewState& v, std::uint64_t window_end);
  static bool matches(const ViewState& v, const trace::EventRecord& r);

  std::function<void(const trace::EventRecord&)> sink_;
  mutable std::mutex mu_;
  std::vector<ViewState> views_;
};

}  // namespace prism::core
