#include "core/socket_link.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

#include "core/clock.hpp"
#include "obs/live/flight.hpp"
#include "obs/prof/prof.hpp"

namespace prism::core {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::system_error(errno, std::generic_category(), "fcntl");
}

}  // namespace

std::pair<int, int> make_socket_pair(SocketDomain domain) {
  if (domain == SocketDomain::kUnix) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
      throw std::system_error(errno, std::generic_category(), "socketpair");
    return {sv[0], sv[1]};
  }
  // TCP loopback: listen on an ephemeral port, connect, accept.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0)
    throw std::system_error(errno, std::generic_category(), "socket");
  int client = -1;
  int accepted = -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t alen = sizeof addr;
  const int err = [&]() -> int {
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      return errno;
    if (::listen(listener, 1) != 0) return errno;
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &alen) !=
        0)
      return errno;
    client = ::socket(AF_INET, SOCK_STREAM, 0);
    if (client < 0) return errno;
    if (::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0)
      return errno;
    accepted = ::accept(listener, nullptr, nullptr);
    if (accepted < 0) return errno;
    // Batches are latency-carrying telemetry: never let Nagle sit on a
    // coalesced frame.
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return 0;
  }();
  close_quiet(listener);
  if (err != 0) {
    close_quiet(client);
    close_quiet(accepted);
    throw std::system_error(err, std::generic_category(),
                            "tcp loopback pair");
  }
  return {accepted, client};
}

// ----------------------------------------------------------------- SocketLink

SocketLink::SocketLink(std::size_t index, DataLink& ingress, DataLink& egress,
                       int write_fd, const SocketOptions& opts)
    : index_(index),
      ingress_(ingress),
      egress_(egress),
      opts_(opts),
      write_fd_(write_fd) {}

SocketLink::~SocketLink() {
  // The owner closes the ingress link before destroying us, which is what
  // lets the pump drain and exit.
  if (pump_.joinable()) pump_.join();
  std::lock_guard lk(write_mu_);
  close_writer_locked();
}

void SocketLink::start() {
  pump_ = std::thread([this] { pump_main(); });
}

void SocketLink::set_fault(fault::FaultInjector* f, fault::RetryPolicy retry) {
  std::lock_guard lk(write_mu_);
  fault_ = f;
  retry_ = retry;
  backoff_rng_ = stats::Rng(
      stats::Rng::hash_seed(f ? f->seed() : 0, 0x50cbull + index_));
}

void SocketLink::lose_keys(const std::vector<obs::LineageKey>& keys,
                           std::uint64_t count, obs::LossSite site) {
  records_lost_.fetch_add(count, std::memory_order_relaxed);
  PRISM_OBS_FLIGHT("wire_loss", obs::to_string(site), index_, count);
  auto* o = observer();
  if (!o) return;
  const auto t = static_cast<double>(now_ns());
  for (const auto k : keys) o->lineage.lose(k, site, t);
}

void SocketLink::lose_batch(const DataBatch& batch, obs::LossSite site) {
  records_lost_.fetch_add(batch.records.size(), std::memory_order_relaxed);
  PRISM_OBS_FLIGHT("wire_loss", obs::to_string(site), index_,
                   batch.records.size());
  auto* o = observer();
  if (!o) return;
  const auto t = static_cast<double>(now_ns());
  for (const auto& r : batch.records)
    o->lineage.lose(obs::lineage_key(r.node, r.process, r.seq), site, t);
}

void SocketLink::close_writer_locked() {
  if (!writer_closed_.exchange(true) && write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void SocketLink::abort_stream_locked() {
  if (!stream_corrupt_.exchange(true, std::memory_order_relaxed))
    PRISM_OBS_FLIGHT("stream_corrupt", "socket", index_, 0);
  close_writer_locked();
}

void SocketLink::prune_acked_locked() {
  const std::uint64_t d = delivered_.load(std::memory_order_acquire);
  while (acked_ < d && !unacked_.empty()) {
    unacked_.pop_front();
    ++acked_;
  }
}

bool SocketLink::flush_locked() {
  prune_acked_locked();
  if (wire_.empty())
    return !(writer_closed_.load() || stream_corrupt_.load());
  if (writer_closed_.load() || stream_corrupt_.load()) {
    for (const auto& pf : pending_) {
      if (pf.accounted) continue;
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      lose_keys(pf.keys, pf.record_count, obs::LossSite::kTpSendFailed);
    }
    pending_.clear();
    wire_.clear();
    return false;
  }
  const std::size_t len = wire_.size();
  const std::size_t written = io_write_all(write_fd_, wire_.data(), len);
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(written, std::memory_order_relaxed);
  if (written == len) {
    for (auto& pf : pending_) {
      if (pf.accounted) continue;
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      unacked_.emplace_back(std::move(pf.keys), pf.record_count);
    }
    pending_.clear();
    wire_.clear();
    return true;
  }
  if (written == 0) {
    // Nothing landed: the stream is still at a frame boundary (typically
    // EPIPE after the reader closed).  Clean, non-desyncing failure; the
    // coalesced frames are gone but the link stays formally open.
    for (const auto& pf : pending_) {
      if (pf.accounted) continue;
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      lose_keys(pf.keys, pf.record_count, obs::LossSite::kTpSendFailed);
    }
    pending_.clear();
    wire_.clear();
    return false;
  }
  // Mid-stream failure: frames wholly before the cut are on the wire and
  // may still be delivered (the unacked ledger decides); the straddling
  // frame is destroyed; later frames never left.  Every byte after the cut
  // would be misparsed, so the stream fails hard.
  for (auto& pf : pending_) {
    if (pf.accounted) continue;
    if (pf.offset + pf.size <= written) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      unacked_.emplace_back(std::move(pf.keys), pf.record_count);
    } else if (pf.offset < written) {
      frames_aborted_.fetch_add(1, std::memory_order_relaxed);
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      lose_keys(pf.keys, pf.record_count, obs::LossSite::kFrameCorrupt);
    } else {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      lose_keys(pf.keys, pf.record_count, obs::LossSite::kTpSendFailed);
    }
  }
  pending_.clear();
  wire_.clear();
  abort_stream_locked();
  return false;
}

void SocketLink::handle_batch(DataBatch&& batch) {
  std::lock_guard lk(write_mu_);
  if (writer_closed_.load() || stream_corrupt_.load()) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    lose_batch(batch, obs::LossSite::kTpSendFailed);
    return;
  }

  // Send-attempt faults: injected transient failures happen before any byte
  // is serialized, so they are cleanly retryable.
  std::uint32_t attempt = 0;
  for (;;) {
    if (!fault_) break;
    const auto f =
        fault_->consult(fault::FaultSite::kSocketSend, batch.source_node);
    if (f.kind == fault::FaultKind::kStall ||
        f.kind == fault::FaultKind::kSlowConsumer)
      fault::sleep_ns(f.stall_ns);
    if (f.kind != fault::FaultKind::kSendFail) break;
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++attempt >= retry_.max_attempts) {
      lose_batch(batch, obs::LossSite::kRetryExhausted);
      return;
    }
    fault::sleep_ns(retry_.backoff_ns(attempt, backoff_rng_));
  }

  bool corrupt_magic = false;
  if (fault_) {
    const auto f =
        fault_->consult(fault::FaultSite::kSocketFrame, batch.source_node);
    if (f.kind == fault::FaultKind::kPartialFrame) {
      // The writer dies mid-frame: whatever was coalesced before this frame
      // goes out whole, then half this frame hits the wire and the stream
      // is desynchronized.
      flush_locked();
      if (!writer_closed_.load()) {
        std::vector<char> wire;
        append_frame(wire, batch);
        io_write_all(write_fd_, wire.data(), wire.size() / 2);
      }
      frames_aborted_.fetch_add(1, std::memory_order_relaxed);
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      lose_batch(batch, obs::LossSite::kFrameCorrupt);
      abort_stream_locked();
      return;
    }
    if (f.kind == fault::FaultKind::kFrameCorrupt) corrupt_magic = true;
  }

  PendingFrame pf;
  pf.offset = wire_.size();
  append_frame(wire_, batch, corrupt_magic);
  pf.size = wire_.size() - pf.offset;
  pf.record_count = batch.records.size();
  if (corrupt_magic) {
    // The frame ships whole but with a flipped magic: the reader must
    // detect it; the records are gone either way.  Accounted here, where
    // their identity is still known, and excluded from the unacked ledger.
    pf.accounted = true;
    frames_aborted_.fetch_add(1, std::memory_order_relaxed);
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    lose_batch(batch, obs::LossSite::kFrameCorrupt);
  } else if (observer()) {
    pf.keys.reserve(batch.records.size());
    for (const auto& r : batch.records)
      pf.keys.push_back(obs::lineage_key(r.node, r.process, r.seq));
  }
  pending_.push_back(std::move(pf));
  if (wire_.size() >= opts_.coalesce_byte_budget) flush_locked();
}

void SocketLink::pump_main() {
  // Busy/idle split for the live tier's obs report: blocking on an empty
  // ingress is idle, everything else (serialize, flush, write) is busy.
  obs::prof::WorkerClock clock("io.socket.pump");
  for (;;) {
    bool have_pending;
    {
      std::lock_guard lk(write_mu_);
      have_pending = !wire_.empty();
    }
    // Coalescing discipline: only block on an empty ingress once the wire
    // buffer has been flushed, so a queue that momentarily runs dry never
    // strands serialized frames.
    const std::uint64_t t_park = obs::prof::prof_now_ns();
    std::optional<Message> msg =
        have_pending ? ingress_.try_pop() : ingress_.pop();
    if (!have_pending)  // only the blocking pop counts as idle
      clock.add_idle_ns(obs::prof::prof_now_ns() - t_park);
    if (!msg) {
      if (have_pending) {
        std::lock_guard lk(write_mu_);
        flush_locked();
        continue;
      }
      break;  // ingress closed and drained
    }
    if (auto* batch = std::get_if<DataBatch>(&*msg)) {
      handle_batch(std::move(*batch));
    } else {
      // Control messages never ride the data wire: the control plane is
      // in-process (§2.2.3 allows direct ISM<->LIS control), so bypass
      // straight into the egress buffer after flushing what precedes it.
      {
        std::lock_guard lk(write_mu_);
        flush_locked();
      }
      egress_.push(std::move(*msg));
    }
  }
  std::lock_guard lk(write_mu_);
  flush_locked();
  close_writer_locked();
}

void SocketLink::close_writer() {
  std::lock_guard lk(write_mu_);
  flush_locked();
  close_writer_locked();
}

bool SocketLink::inject_raw(const void* data, std::size_t len) {
  std::lock_guard lk(write_mu_);
  if (writer_closed_.load()) return false;
  flush_locked();
  if (writer_closed_.load()) return false;
  return io_write_all(write_fd_, data, len) == len;
}

void SocketLink::reconcile_undelivered() {
  std::lock_guard lk(write_mu_);
  prune_acked_locked();
  for (const auto& [keys, count] : unacked_) {
    frames_undelivered_.fetch_add(1, std::memory_order_relaxed);
    lose_keys(keys, count, obs::LossSite::kFrameCorrupt);
  }
  unacked_.clear();
}

// ------------------------------------------------------------ SocketTransport

SocketTransport::SocketTransport(TransferProtocol& tp, SocketOptions opts)
    : opts_(opts) {
  if (opts_.max_frame_records == 0)
    throw std::invalid_argument("SocketTransport: max_frame_records 0");
  if (opts_.coalesce_byte_budget == 0)
    throw std::invalid_argument("SocketTransport: coalesce_byte_budget 0");
  ignore_sigpipe_once();
  const std::size_t n = tp.data_link_count();
  egress_.reserve(n);
  links_.reserve(n);
  conns_.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      egress_.push_back(
          std::make_unique<DataLink>(tp.data_link(i).capacity()));
      auto [read_fd, write_fd] = make_socket_pair(opts_.domain);
      try {
        set_nonblocking(read_fd);
        set_nonblocking(write_fd);
      } catch (...) {
        close_quiet(read_fd);
        close_quiet(write_fd);
        throw;
      }
      Conn c;
      c.fd = read_fd;
      c.link = i;
      conns_.push_back(std::move(c));
      links_.emplace_back(new SocketLink(i, tp.data_link(i), *egress_[i],
                                         write_fd, opts_));
    }
  } catch (...) {
    // No threads are running yet; ~SocketLink closes the write fds.
    for (auto& c : conns_) close_quiet(c.fd);
    throw;
  }
  reader_ = std::thread([this] { reader_main(); });
  for (auto& l : links_) l->start();
}

SocketTransport::~SocketTransport() {
  // Orderly even when the owner never ran a shutdown: close the ingress
  // links so the pumps drain and exit, and the egress links so a reader
  // blocked on a full buffer unblocks.  In the normal lifecycle
  // (Ism::stop -> close_data_links -> pump EOF -> reader finish) all of
  // this already happened and the closes are no-ops.
  for (auto& l : links_) l->ingress_.close();
  for (auto& e : egress_) e->close();
  links_.clear();  // joins the pumps, closing the write fds -> reader EOF
  if (reader_.joinable()) reader_.join();
  for (auto& c : conns_) close_quiet(c.fd);
}

void SocketTransport::quiesce() {
  // Pumps exit once their ingress is closed and drained, closing the write
  // fds; the reader then sees EOF (or the streams were already corrupt) and
  // retires every connection, which freezes the undelivered ledgers.
  for (auto& l : links_)
    if (l->pump_.joinable()) l->pump_.join();
  if (reader_.joinable()) reader_.join();
}

void SocketTransport::set_fault(fault::FaultInjector* f,
                                fault::RetryPolicy retry) {
  for (auto& l : links_) l->set_fault(f, retry);
}

void SocketTransport::set_observer(obs::PipelineObserver* o) {
  for (auto& l : links_) l->set_observer(o);
}

std::uint64_t SocketTransport::records_lost_total() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->records_lost();
  return total;
}

std::uint64_t SocketTransport::frames_delivered_total() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->frames_delivered();
  return total;
}

void SocketTransport::deliver(Conn& c) {
  SocketLink& l = *links_[c.link];
  l.on_frame_delivered();
  const std::uint64_t count = c.batch.records.size();
  std::vector<obs::LineageKey> keys;
  if (l.observer() != nullptr) {
    keys.reserve(count);
    for (const auto& r : c.batch.records)
      keys.push_back(obs::lineage_key(r.node, r.process, r.seq));
  }
  DataBatch b = std::move(c.batch);
  c.batch = DataBatch{};
  c.in_payload = false;
  c.got = 0;
  if (!egress_[c.link]->push(Message(std::move(b)))) {
    // Egress closed under us (abandoned teardown): the frame crossed the
    // wire but the ISM will never see it.
    l.lose_keys(keys, count, obs::LossSite::kIsmQueue);
  }
}

void SocketTransport::finish(Conn& c, bool corrupt) {
  if (corrupt) links_[c.link]->on_reader_corrupt();
  // Close the read end first: a concurrent flush then fails with EPIPE
  // instead of racing the in-transit ledger reconciled below, and a writer
  // blocked on a full kernel buffer fails instead of hanging forever.
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
  c.done = true;
  links_[c.link]->reconcile_undelivered();
  egress_[c.link]->close();
}

void SocketTransport::service(Conn& c) {
  for (;;) {
    char* const target =
        !c.in_payload ? reinterpret_cast<char*>(&c.hdr)
                      : reinterpret_cast<char*>(c.batch.records.data());
    const std::size_t want =
        !c.in_payload ? sizeof c.hdr
                      : c.batch.records.size() * sizeof(trace::EventRecord);
    while (c.got < want) {
      const ssize_t n = ::read(c.fd, target + c.got, want - c.got);
      if (n > 0) {
        c.got += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return;  // drained for now; back to poll
      // EOF or hard error: clean only at a frame boundary.
      finish(c, /*corrupt=*/c.in_payload || c.got != 0);
      return;
    }
    if (!c.in_payload) {
      if (c.hdr.magic != kFrameMagic ||
          c.hdr.record_count > opts_.max_frame_records) {
        // The header is untrusted wire input: a bad magic or an insane
        // record count desynchronizes the stream — stop before allocating
        // anything from it.
        finish(c, /*corrupt=*/true);
        return;
      }
      c.batch = DataBatch{};
      c.batch.source_node = c.hdr.source_node;
      c.batch.t_sent_ns = c.hdr.t_sent_ns;
      // Staging storage from the shared arena: the ISM returns it after
      // consuming the batch, so steady-state receive allocates nothing.
      c.batch.records = BatchArena::instance().acquire(c.hdr.record_count);
      c.in_payload = true;
      c.got = 0;
    } else {
      deliver(c);
    }
  }
}

void SocketTransport::reader_main() {
  // Busy/idle split for the live tier's obs report: parked in poll(2) is
  // idle, servicing connections is busy.
  obs::prof::WorkerClock clock("io.socket.reader");
  std::vector<pollfd> pfds;
  std::vector<std::size_t> idx;
  for (;;) {
    pfds.clear();
    idx.clear();
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].done) continue;
      pollfd p{};
      p.fd = conns_[i].fd;
      p.events = POLLIN;
      pfds.push_back(p);
      idx.push_back(i);
    }
    if (pfds.empty()) return;  // every connection reached EOF or corruption
    const std::uint64_t t_park = obs::prof::prof_now_ns();
    const int r = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    clock.add_idle_ns(obs::prof::prof_now_ns() - t_park);
    if (r < 0) {
      if (errno == EINTR) continue;
      // poll itself failed hard: every remaining stream is unreadable.
      for (const auto i : idx) finish(conns_[i], /*corrupt=*/true);
      return;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR))
        service(conns_[idx[k]]);
    }
  }
}

}  // namespace prism::core
