// The Table 8 survey: IS features of representative parallel tools.
//
// "This paper classifies an IS in terms of (1) the time constraints imposed
// by analysis tools in the environment, and (2) IS development, management,
// and evaluation approaches" (§1); Table 8 instantiates that classification
// for PICL, AIMS, Pablo, Paradyn, Falcon/Issos/ChaosMON, ParAide (TAM), SPI,
// and VIZIR.  The registry makes the taxonomy queryable (find all on-line
// adaptive ISs, ...) and renders the table for the Table 8 bench.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/classification.hpp"

namespace prism::core {

struct ToolSurveyEntry {
  std::string name;
  AnalysisSupport analysis;
  std::string lis;  ///< nature of the LIS component
  std::string ism;  ///< nature of the ISM component
  SynthesisApproach synthesis;
  ManagementApproach management;
  EvaluationApproach evaluation;
  std::string evaluation_note;  ///< Table 8 "Evaluation Approach" cell text
};

class ToolRegistry {
 public:
  /// The registry preloaded with the paper's Table 8 rows.
  static ToolRegistry paper_table8();

  /// An empty registry for user extension.
  ToolRegistry() = default;

  void add(ToolSurveyEntry entry);
  const std::vector<ToolSurveyEntry>& entries() const { return entries_; }
  std::optional<ToolSurveyEntry> find(std::string_view name) const;

  std::vector<ToolSurveyEntry> with_analysis(AnalysisSupport a) const;
  std::vector<ToolSurveyEntry> with_management(ManagementApproach m) const;
  std::vector<ToolSurveyEntry> with_evaluation(EvaluationApproach e) const;

  /// Renders the survey as an aligned text table (the Table 8 bench output).
  std::string render() const;

 private:
  std::vector<ToolSurveyEntry> entries_;
};

}  // namespace prism::core
