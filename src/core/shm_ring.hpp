// Lock-free SPSC byte ring over a shared-memory segment — the primitive
// under the `tp = shm` transport (DESIGN.md §12).
//
// One producer appends variable-length frames, one consumer removes them, in
// FIFO order, with no locks, no syscalls, and no allocation on either side:
// the steady-state data path is two memcpys (in and out of the mapped
// segment) plus one release store per side.  The layout is a fixed control
// block followed by a power-of-two data area, all inside one caller-provided
// mapping, so the same ring works within a process, across fork() over a
// MAP_SHARED mapping, or in a named shm segment.
//
// Index scheme: `head` counts bytes ever produced, `tail` bytes ever
// consumed — both monotonic, never wrapped.  A position maps to the data
// area as `pos & (capacity - 1)`, which is why the capacity must be a power
// of two; occupancy is `head - tail`, correct across the uint64 wrap.
//
// Memory ordering (the happens-before edges everything else rests on):
//   - producer: memcpy payload, then head.store(release).  The consumer's
//     head.load(acquire) therefore observes fully-written bytes only.
//   - consumer: memcpy out, then tail.store(release).  The producer's
//     tail.load(acquire) therefore reuses bytes only after they were read.
//   - flags use fetch_or(release) / load(acquire): a flag set after a write
//     (e.g. producer-done after the final frame) is observed no earlier
//     than the write itself.
// Each side additionally keeps a *view-local* cache of the opposite index
// and re-loads it only when the cached value is insufficient, so an
// uncontended ring does not ping-pong the head/tail cache lines.
//
// False sharing: head, tail, and flags each sit on their own
// alignas(64) cache line, so producer progress never invalidates the line
// the consumer spins on (and vice versa).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace prism::core {

constexpr bool is_power_of_two(std::size_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

class ShmRing {
 public:
  /// Lifecycle flags published through the control block (visible across
  /// processes sharing the mapping).
  static constexpr std::uint32_t kProducerDone = 1u << 0;  ///< clean EOF
  static constexpr std::uint32_t kPoisoned = 1u << 1;      ///< stream corrupt
  static constexpr std::uint32_t kConsumerGone = 1u << 2;  ///< reader quit

  /// Control block at the start of the segment.  Atomics over shared
  /// memory must be address-free; both are lock-free uint types everywhere
  /// this code builds.
  struct Control {
    std::uint64_t magic = 0;
    std::uint64_t capacity = 0;
    /// Bytes ever produced.  Producer-written, consumer-read.
    alignas(64) std::atomic<std::uint64_t> head;
    /// Bytes ever consumed.  Consumer-written, producer-read.
    alignas(64) std::atomic<std::uint64_t> tail;
    /// Lifecycle flags (kProducerDone | kPoisoned | kConsumerGone).
    alignas(64) std::atomic<std::uint32_t> flags;
  };
  static_assert(std::is_trivially_destructible_v<Control>);

  static constexpr std::uint64_t kMagic = 0x53484d52494e4731ull;  // "SHMRING1"

  /// Bytes of mapping needed for a ring of `capacity` data bytes.
  static constexpr std::size_t segment_bytes(std::size_t capacity) {
    return sizeof(Control) + capacity;
  }

  /// Placement-initializes a ring over `mem` (which must hold
  /// segment_bytes(capacity) writable bytes).  Throws on a capacity that is
  /// zero or not a power of two.
  static ShmRing create(void* mem, std::size_t capacity) {
    if (!is_power_of_two(capacity))
      throw std::invalid_argument(
          "ShmRing: capacity must be a nonzero power of two");
    auto* ctl = new (mem) Control;
    ctl->capacity = capacity;
    ctl->head.store(0, std::memory_order_relaxed);
    ctl->tail.store(0, std::memory_order_relaxed);
    ctl->flags.store(0, std::memory_order_relaxed);
    // Publish the magic last: an attach() racing create() over the same
    // segment must not see a valid magic over uninitialized indices.
    std::atomic_thread_fence(std::memory_order_release);
    ctl->magic = kMagic;
    return ShmRing(ctl);
  }

  /// Attaches to a ring previously create()d in `mem` (e.g. the other side
  /// of a fork).  The control block is untrusted shared state: magic and
  /// capacity are validated before use.
  static ShmRing attach(void* mem) {
    auto* ctl = static_cast<Control*>(mem);
    if (ctl->magic != kMagic)
      throw std::invalid_argument("ShmRing: bad segment magic");
    std::atomic_thread_fence(std::memory_order_acquire);
    if (!is_power_of_two(ctl->capacity))
      throw std::invalid_argument("ShmRing: corrupt capacity");
    return ShmRing(ctl);
  }

  ShmRing() = default;

  std::size_t capacity() const { return ctl_->capacity; }

  // ---- producer side ------------------------------------------------------

  /// Free space as of the last consumer-index refresh (conservative).
  std::size_t free_bytes() const {
    return ctl_->capacity -
           static_cast<std::size_t>(
               ctl_->head.load(std::memory_order_relaxed) -
               ctl_->tail.load(std::memory_order_acquire));
  }

  /// Appends one frame made of two spans (header + payload) with a single
  /// publication: the consumer sees either nothing or the whole frame.
  /// Returns false — writing nothing — when the frame does not fit now.
  bool try_write2(const void* a, std::size_t alen, const void* b,
                  std::size_t blen) {
    const std::size_t len = alen + blen;
    const std::uint64_t head = ctl_->head.load(std::memory_order_relaxed);
    if (ctl_->capacity - (head - tail_cache_) < len) {
      tail_cache_ = ctl_->tail.load(std::memory_order_acquire);
      if (ctl_->capacity - (head - tail_cache_) < len) return false;
    }
    copy_in(head, a, alen);
    copy_in(head + alen, b, blen);
    ctl_->head.store(head + len, std::memory_order_release);
    return true;
  }

  bool try_write(const void* src, std::size_t len) {
    return try_write2(src, len, nullptr, 0);
  }

  // ---- consumer side ------------------------------------------------------

  /// Bytes available to read as of the last producer-index refresh.
  std::size_t readable() const {
    return static_cast<std::size_t>(
        ctl_->head.load(std::memory_order_acquire) -
        ctl_->tail.load(std::memory_order_relaxed));
  }

  /// Removes exactly `len` bytes, or nothing (all-or-nothing).  The caller
  /// composes frame reads as header-then-payload; a payload shorter than its
  /// header promised simply fails here until the producer publishes it.
  bool try_read(void* dst, std::size_t len) {
    const std::uint64_t tail = ctl_->tail.load(std::memory_order_relaxed);
    if (head_cache_ - tail < len) {
      head_cache_ = ctl_->head.load(std::memory_order_acquire);
      if (head_cache_ - tail < len) return false;
    }
    copy_out(tail, dst, len);
    ctl_->tail.store(tail + len, std::memory_order_release);
    return true;
  }

  // ---- lifecycle ----------------------------------------------------------

  /// Sets flags with release ordering: anything written before the call is
  /// visible to a side that observes the flag.
  void set_flags(std::uint32_t f) {
    ctl_->flags.fetch_or(f, std::memory_order_release);
  }
  std::uint32_t flags() const {
    return ctl_->flags.load(std::memory_order_acquire);
  }

 private:
  explicit ShmRing(Control* ctl)
      : ctl_(ctl),
        data_(reinterpret_cast<char*>(ctl) + sizeof(Control)),
        mask_(ctl->capacity - 1) {}

  /// Two-part copy across the wrap point; `pos` is the monotonic index.
  void copy_in(std::uint64_t pos, const void* src, std::size_t len) {
    if (len == 0) return;
    const std::size_t off = static_cast<std::size_t>(pos & mask_);
    const std::size_t first = std::min(len, ctl_->capacity - off);
    std::memcpy(data_ + off, src, first);
    if (first < len)
      std::memcpy(data_, static_cast<const char*>(src) + first, len - first);
  }

  void copy_out(std::uint64_t pos, void* dst, std::size_t len) {
    if (len == 0) return;
    const std::size_t off = static_cast<std::size_t>(pos & mask_);
    const std::size_t first = std::min(len, ctl_->capacity - off);
    std::memcpy(dst, data_ + off, first);
    if (first < len)
      std::memcpy(static_cast<char*>(dst) + first, data_, len - first);
  }

  Control* ctl_ = nullptr;
  char* data_ = nullptr;
  std::uint64_t mask_ = 0;
  /// View-local snapshots of the opposite side's index (see header comment).
  std::uint64_t tail_cache_ = 0;
  std::uint64_t head_cache_ = 0;
};

}  // namespace prism::core
