// Bounded blocking channel — the in-process stand-in for the OS IPC
// abstractions real ISs ride on ("sockets in Pablo and Issos, pipes in
// Paradyn, and remote procedure calls in TAM", §2.2.3).
//
// Semantics match a Unix pipe closely enough to reproduce the behaviors the
// paper analyzes: finite capacity, FIFO, blocking writers when full (this is
// precisely the "pipes become full and application processes, blocked"
// bottleneck of §3.2.3), blocking readers when empty, and EOF via close().
// Self-accounting (enqueue/dequeue counts, high-water mark, producer block
// time) feeds the live IS's evaluation layer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace prism::core {

struct ChannelStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  /// Failed push attempts of any flavor (push on closed, try_push on
  /// full/closed, push_for timeout/closed): attempts == enqueued + rejected.
  std::uint64_t rejected = 0;
  std::size_t max_occupancy = 0;
  /// Cumulative time producers spent blocked in push() (ns).
  std::uint64_t producer_block_ns = 0;
};

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Channel: capacity 0");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking push.  Returns false when the channel is closed.
  bool push(T value) {
    std::unique_lock lk(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
      stats_.producer_block_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (closed_) {
      // Every failed push counts: try_push and push_for already increment
      // rejected, and the conservation audit (accepted == enqueued,
      // attempts == enqueued + rejected) only closes if this path does too.
      ++stats_.rejected;
      return false;
    }
    items_.push_back(std::move(value));
    ++stats_.enqueued;
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push.  Returns false when full or closed.
  bool try_push(T value) {
    std::unique_lock lk(mu_);
    if (closed_ || items_.size() >= capacity_) {
      ++stats_.rejected;
      return false;
    }
    items_.push_back(std::move(value));
    ++stats_.enqueued;
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Push with a deadline: blocks while full for up to `timeout`, then gives
  /// up.  Returns false on timeout or when the channel is closed.  The
  /// reliable control path uses this for lifecycle-critical messages —
  /// bounded blocking instead of a silent try_push drop.
  template <typename Rep, typename Period>
  bool push_for(T value, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait_for(lk, timeout,
                         [&] { return items_.size() < capacity_ || closed_; });
      stats_.producer_block_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (closed_ || items_.size() >= capacity_) {
      ++stats_.rejected;
      return false;
    }
    items_.push_back(std::move(value));
    ++stats_.enqueued;
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  // GCC 12's uninitialized-use analysis misfires on the moved-from variant
  // inside the returned optional when these pops inline into a caller loop
  // (observed in the transport pump threads; the move-construct at `T v =
  // std::move(items_.front())` is guarded by the emptiness checks above it).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

  /// Blocking pop.  Returns nullopt when the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++stats_.dequeued;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++stats_.dequeued;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// Pop with a deadline.  Returns nullopt on timeout or closed+drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (!not_empty_.wait_for(lk, timeout,
                             [&] { return !items_.empty() || closed_; }))
      return std::nullopt;
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++stats_.dequeued;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Closes the channel: producers fail, consumers drain then see EOF.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  ChannelStats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

  /// Conservation invariant: enqueued == dequeued + resident.
  bool conserved() const {
    std::lock_guard lk(mu_);
    return stats_.enqueued == stats_.dequeued + items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  ChannelStats stats_;
};

}  // namespace prism::core
