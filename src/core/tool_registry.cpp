#include "core/tool_registry.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace prism::core {

std::string_view to_string(AnalysisSupport v) {
  switch (v) {
    case AnalysisSupport::kOffline: return "Off-line";
    case AnalysisSupport::kOnline: return "On-line";
    case AnalysisSupport::kOnOffline: return "On-/Off-line";
  }
  return "unknown";
}

std::string_view to_string(SynthesisApproach v) {
  switch (v) {
    case SynthesisApproach::kHardCoded: return "Hard-coded";
    case SynthesisApproach::kApplicationSpecific: return "Application-specific";
  }
  return "unknown";
}

std::string_view to_string(ManagementApproach v) {
  switch (v) {
    case ManagementApproach::kStatic: return "Static";
    case ManagementApproach::kAdaptive: return "Adaptive";
    case ManagementApproach::kApplicationSpecific:
      return "Application-specific";
  }
  return "unknown";
}

std::string_view to_string(EvaluationApproach v) {
  switch (v) {
    case EvaluationApproach::kNone: return "-";
    case EvaluationApproach::kAdaptiveCostModel: return "Adaptive cost model";
    case EvaluationApproach::kPerturbationFactors:
      return "Perturbation factors";
    case EvaluationApproach::kAccountableInvasiveness:
      return "Accountable invasiveness";
    case EvaluationApproach::kStructuredModeling: return "Structured modeling";
  }
  return "unknown";
}

void ToolRegistry::add(ToolSurveyEntry entry) {
  entries_.push_back(std::move(entry));
}

std::optional<ToolSurveyEntry> ToolRegistry::find(std::string_view name) const {
  for (const auto& e : entries_)
    if (e.name == name) return e;
  return std::nullopt;
}

std::vector<ToolSurveyEntry> ToolRegistry::with_analysis(
    AnalysisSupport a) const {
  std::vector<ToolSurveyEntry> out;
  std::copy_if(entries_.begin(), entries_.end(), std::back_inserter(out),
               [a](const auto& e) { return e.analysis == a; });
  return out;
}

std::vector<ToolSurveyEntry> ToolRegistry::with_management(
    ManagementApproach m) const {
  std::vector<ToolSurveyEntry> out;
  std::copy_if(entries_.begin(), entries_.end(), std::back_inserter(out),
               [m](const auto& e) { return e.management == m; });
  return out;
}

std::vector<ToolSurveyEntry> ToolRegistry::with_evaluation(
    EvaluationApproach e) const {
  std::vector<ToolSurveyEntry> out;
  std::copy_if(entries_.begin(), entries_.end(), std::back_inserter(out),
               [e](const auto& x) { return x.evaluation == e; });
  return out;
}

std::string ToolRegistry::render() const {
  std::ostringstream os;
  auto col = [&](std::string_view s, int w) {
    os << std::left << std::setw(w) << std::string(s).substr(0, w - 1);
  };
  col("Tool", 16);
  col("Analysis", 14);
  col("LIS", 26);
  col("ISM", 24);
  col("Synthesis", 22);
  col("Management", 22);
  col("Evaluation", 28);
  os << "\n" << std::string(150, '-') << "\n";
  for (const auto& e : entries_) {
    col(e.name, 16);
    col(to_string(e.analysis), 14);
    col(e.lis, 26);
    col(e.ism, 24);
    col(to_string(e.synthesis), 22);
    col(to_string(e.management), 22);
    col(e.evaluation_note.empty() ? std::string(to_string(e.evaluation))
                                  : e.evaluation_note,
        28);
    os << "\n";
  }
  return os.str();
}

ToolRegistry ToolRegistry::paper_table8() {
  ToolRegistry r;
  r.add({"PICL", AnalysisSupport::kOffline,
         "Local buffers using runtime library", "Trace file",
         SynthesisApproach::kHardCoded, ManagementApproach::kStatic,
         EvaluationApproach::kNone, ""});
  r.add({"AIMS", AnalysisSupport::kOffline, "Library", "Trace file",
         SynthesisApproach::kHardCoded, ManagementApproach::kStatic,
         EvaluationApproach::kNone, ""});
  r.add({"Pablo", AnalysisSupport::kOffline, "Library", "Trace file",
         SynthesisApproach::kHardCoded, ManagementApproach::kAdaptive,
         EvaluationApproach::kNone, ""});
  r.add({"Paradyn", AnalysisSupport::kOnline, "Local daemon",
         "Main Paradyn process", SynthesisApproach::kApplicationSpecific,
         ManagementApproach::kAdaptive, EvaluationApproach::kAdaptiveCostModel,
         "Adaptive cost model"});
  r.add({"Falcon/Issos", AnalysisSupport::kOnOffline, "Resident monitor",
         "Central monitor", SynthesisApproach::kApplicationSpecific,
         ManagementApproach::kApplicationSpecific,
         EvaluationApproach::kPerturbationFactors,
         "Perturbation factor evaluation"});
  r.add({"ParAide(TAM)", AnalysisSupport::kOnOffline, "Library",
         "Event trace server", SynthesisApproach::kHardCoded,
         ManagementApproach::kStatic,
         EvaluationApproach::kAccountableInvasiveness,
         "Accountable invasiveness"});
  r.add({"SPI", AnalysisSupport::kOnOffline, "Library",
         "Event-Action machines", SynthesisApproach::kApplicationSpecific,
         ManagementApproach::kApplicationSpecific,
         EvaluationApproach::kAccountableInvasiveness,
         "Accountable invasiveness"});
  r.add({"VIZIR", AnalysisSupport::kOnOffline, "Library", "VIZIR front-end",
         SynthesisApproach::kHardCoded, ManagementApproach::kStatic,
         EvaluationApproach::kNone, ""});
  return r;
}

}  // namespace prism::core
