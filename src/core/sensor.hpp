// Sensors and probes — the instrumentation points an application (or a
// compiler pass, in a full deployment) inserts.
//
// "Ogle et al. describe the LIS part of the monitor in their Issos
// environment in terms of sensors, probes, and tracing buffers" (§2.2.1).
// A Probe is a named, dynamically enable-able instrumentation point (the
// Paradyn model: "instrumentation is inserted dynamically in the program
// during runtime", §3.2) that emits EventRecords into a LIS sink.  ScopedBlock
// wraps a code region in kBlockBegin/kBlockEnd events.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "core/clock.hpp"
#include "trace/record.hpp"

namespace prism::core {

/// Destination for sensor events (bound to a LIS).
using EventSink = std::function<void(trace::EventRecord)>;

/// A dynamically switchable instrumentation point.  Emission is a no-op
/// while disabled; toggling is lock-free and safe from any thread.
class Probe {
 public:
  Probe(std::string name, std::uint16_t id, std::uint32_t node,
        std::uint32_t process, EventSink sink, bool enabled = true)
      : name_(std::move(name)),
        id_(id),
        node_(node),
        process_(process),
        sink_(std::move(sink)),
        enabled_(enabled) {}

  const std::string& name() const { return name_; }
  std::uint16_t id() const { return id_; }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Emits a user event with this probe's id as the tag.
  void event(std::uint64_t payload = 0) {
    emit(trace::EventKind::kUserEvent, payload);
  }

  /// Emits a sampled metric value (Paradyn-style).
  void sample(double value) {
    emit(trace::EventKind::kSample, trace::pack_double(value));
  }

  /// Emits a counter increment (payload = running count).
  void count() { emit(trace::EventKind::kUserEvent, ++counter_); }

  void emit(trace::EventKind kind, std::uint64_t payload) {
    if (!enabled()) return;
    trace::EventRecord r;
    r.timestamp = now_ns();
    r.node = node_;
    r.process = process_;
    r.kind = kind;
    r.tag = id_;
    r.payload = payload;
    r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    sink_(r);
    ++emitted_;
  }

  std::uint64_t emitted() const { return emitted_.load(); }

 private:
  std::string name_;
  std::uint16_t id_;
  std::uint32_t node_;
  std::uint32_t process_;
  EventSink sink_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> emitted_{0};
};

/// RAII region instrumentation: emits kBlockBegin on construction and
/// kBlockEnd (payload = duration ns) on destruction.
class ScopedBlock {
 public:
  ScopedBlock(Probe& probe, std::uint64_t block_id)
      : probe_(probe), block_id_(block_id), t0_(now_ns()) {
    probe_.emit(trace::EventKind::kBlockBegin, block_id_);
  }
  ~ScopedBlock() {
    probe_.emit(trace::EventKind::kBlockEnd, now_ns() - t0_);
  }
  ScopedBlock(const ScopedBlock&) = delete;
  ScopedBlock& operator=(const ScopedBlock&) = delete;

 private:
  Probe& probe_;
  std::uint64_t block_id_;
  std::uint64_t t0_;
};

}  // namespace prism::core
