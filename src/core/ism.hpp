// The Instrumentation System Manager (§2.2.2).
//
// "The LIS forwards instrumentation data from the concurrent system nodes to
// a logically centralized location called the Instrumentation System Manager
// (ISM), which manages the data in real-time.  The functions of the ISM
// include temporary buffering of data, storing of data on a mass-storage
// device, and pre-processing of data for analysis and/or visualization tools
// (e.g., causal ordering)."
//
// The live ISM here mirrors Fig. 2: input buffer(s) fed by the TP, an
// instrumentation data processor (causal reordering + logical timestamping),
// an output buffer drained to the attached tools, and an optional storage
// tier (trace file).  The input side is configurable as SISO (one shared
// input buffer) or MISO (one per node) — the §3.3.2 design alternatives —
// and the ISM self-measures the §3.3.2 metrics: data processing latency and
// average input buffer length.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "core/tool.hpp"
#include "core/transfer_protocol.hpp"
#include "obs/pipeline.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"
#include "trace/causal.hpp"
#include "trace/file.hpp"

namespace prism::core {

/// Input-buffer configuration (§3.3.2).
enum class InputConfig : std::uint8_t {
  kSiso,  ///< Single Input buffer, Single Output buffer
  kMiso,  ///< Multiple Input buffers (one per node), Single Output buffer
};

std::string_view to_string(InputConfig c);

struct IsmConfig {
  InputConfig input = InputConfig::kSiso;
  std::size_t output_capacity = 8192;
  /// Causally reorder and logically timestamp records before dispatch.
  bool causal_ordering = true;
  /// Optional storage tier: every processed record is also appended here.
  std::optional<std::filesystem::path> storage_path;
};

struct IsmStats {
  std::uint64_t batches_received = 0;
  std::uint64_t records_received = 0;
  std::uint64_t records_dispatched = 0;
  std::uint64_t records_stored = 0;
  std::uint64_t held_back = 0;          ///< out-of-order arrivals buffered
  std::uint64_t still_held = 0;         ///< reorderer residue (snapshot)
  std::uint64_t in_output = 0;          ///< output buffer occupancy (snapshot)
  double hold_back_ratio = 0.0;
  /// Data processing latency (ns): TP send -> output buffer (§3.3.2).
  stats::Summary processing_latency_ns;
  /// On-line 95th-percentile processing latency (P2 estimator; 0 when no
  /// records have been processed).
  double processing_latency_p95_ns = 0;
  /// Output-queue residence (ns): output buffer -> tool dispatch.
  stats::Summary dispatch_latency_ns;
  /// Tools isolated after throwing from consume()/finish() or being crashed
  /// by the fault plane (kToolCallback).  A failed tool is skipped for the
  /// rest of the run; the pipeline keeps serving the survivors.
  std::uint64_t tools_failed = 0;
  /// Sources declared dead via mark_source_dead().
  std::uint64_t sources_dead = 0;
  /// Held-back records force-released because their source died (the
  /// matching sends will never arrive; see CausalReorderer::expire_node).
  std::uint64_t expired_released = 0;

  std::uint64_t records_in() const { return records_received; }
  /// Record-conservation invariant: every record the TP delivered is
  /// dispatched to the tools, still held by the causal reorderer, or still
  /// sitting in the output buffer.  Exact at quiescence (after stop()).
  bool conserved() const {
    return records_in() == records_dispatched + still_held + in_output;
  }
};

class Ism {
 public:
  /// The ISM consumes every data link of `tp`; `tp` must outlive the ISM.
  Ism(TransferProtocol& tp, IsmConfig config);
  ~Ism();
  Ism(const Ism&) = delete;
  Ism& operator=(const Ism&) = delete;

  /// Attaches a tool (before or after start()).
  void attach_tool(std::shared_ptr<Tool> tool);

  /// Starts the data-processor and dispatch threads.
  void start();

  /// Drains in-flight data, stops threads, finishes tools.  Idempotent.
  /// Callers must stop all LISes first so no new data races the drain.
  void stop();

  IsmStats stats() const;
  const IsmConfig& config() const { return config_; }

  /// Attaches the model-time observability sink (may be null).  Call before
  /// start(); records stamped: kIsmInput, kIsmProcessed, kToolDispatch,
  /// with kIsmQueue losses for the causally unresolvable shutdown residue.
  void set_observer(obs::PipelineObserver* o) { observer_ = o; }

  /// ISM -> LIS control plane (dynamic instrumentation, FAOF broadcast...).
  void broadcast_control(const ControlMessage& m) { tp_.broadcast(m); }

  /// Attaches the fault plane (may be null).  Call before start().
  /// Consulted at kTpReceive (per batch), kIsmDispatch (per record) and
  /// kToolCallback (per tool per record; node = tool index).
  void set_fault(fault::FaultInjector* f) { fault_ = f; }

  /// Declares a source node dead: the causal reorderer stops waiting for
  /// sends from that node, so receives held back on its messages are
  /// force-released at drain time instead of stranding as residue.  Safe to
  /// call any time before or during stop().
  void mark_source_dead(std::uint32_t node);

  /// Declares a whole group of source nodes dead at once — a federated
  /// deployment's unit of death is an aggregator shard (DESIGN.md §16).
  /// The group is expired together at drain time (one
  /// CausalReorderer::expire_nodes pass), so holds *between* two nodes of
  /// the dead shard resolve instead of stranding.
  void mark_sources_dead(const std::vector<std::uint32_t>& nodes);

 private:
  struct Timed {
    trace::EventRecord record;
    std::uint64_t t_processed_ns;
  };

  void processor_main();
  void dispatch_main();
  void process_batch(DataBatch&& batch);
  void emit(const trace::EventRecord& r, std::uint64_t t_arrival_ns);

  TransferProtocol& tp_;
  IsmConfig config_;
  std::vector<std::shared_ptr<Tool>> tools_;
  std::unique_ptr<Channel<Timed>> output_;
  std::unique_ptr<trace::CausalReorderer> reorderer_;
  std::unique_ptr<trace::TraceFileWriter> storage_;
  std::thread processor_;
  std::thread dispatcher_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool stopped_ = false;
  mutable std::mutex mu_;
  IsmStats stats_;
  obs::PipelineObserver* observer_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  /// Nodes declared dead (guarded by mu_); drained by processor_main.
  std::vector<std::uint32_t> dead_sources_;
  /// Per-tool failed flag; dispatcher-thread-only until after join.
  std::vector<char> tool_dead_;
  stats::P2Quantile proc_latency_p95_{0.95};
  /// Arrival time of the batch whose records are being processed.
  std::uint64_t current_batch_arrival_ns_ = 0;
  /// Logical stamp counter when causal ordering is disabled.
  std::uint64_t plain_lamport_ = 0;
};

}  // namespace prism::core
