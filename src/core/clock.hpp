// Physical timestamps for the live instrumentation system.
//
// Timestamps are nanoseconds from a process-wide steady epoch, so records
// from different threads of one process are directly comparable (the lack of
// a *global* clock across nodes is what logical timestamps are for).
#pragma once

#include <chrono>
#include <cstdint>

namespace prism::core {

/// Nanoseconds since the first call in this process (steady, monotonic).
inline std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

}  // namespace prism::core
