// Pablo-style adaptive tracing levels (§4: "Pablo's IS supports adaptive
// levels of tracing to dynamically alter the volume, frequency, and types
// of event data recorded.  Adaptive management policies ensure that the IS
// overheads remain low, particularly for long-running instrumented
// programs").
//
// TracingThrottle is an EventSink decorator that watches the observed event
// rate (EWMA of inter-event gaps) and moves between tracing levels:
//
//   kFull      — every record passes through;
//   kSampled   — 1-in-N records pass (N = sample_stride);
//   kCounting  — records are aggregated: one kSample record per
//                aggregation window carries the count seen in that window;
//   kOff       — everything is dropped (only level transitions reported).
//
// Transitions happen when the EWMA rate stays above `escalate_rate` (go one
// level coarser) or below `deescalate_rate` (one level finer), with a
// minimum dwell time to prevent flapping.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string_view>

#include "core/sensor.hpp"
#include "obs/pipeline.hpp"
#include "trace/record.hpp"

namespace prism::core {

enum class TraceLevel : std::uint8_t { kFull = 0, kSampled, kCounting, kOff };

std::string_view to_string(TraceLevel lvl);

struct ThrottleConfig {
  /// Events/second above which the throttle escalates one level.
  double escalate_rate = 1e6;
  /// Events/second below which it de-escalates one level.
  double deescalate_rate = 1e5;
  /// EWMA weight for the newest inter-event gap.
  double smoothing = 0.05;
  /// Minimum time between level changes (ns).
  std::uint64_t dwell_ns = 1'000'000;
  /// 1-in-N pass-through at kSampled.
  std::uint32_t sample_stride = 16;
  /// Window for kCounting aggregation (ns).
  std::uint64_t counting_window_ns = 1'000'000;
  /// Tag used for the aggregate records emitted at kCounting.
  std::uint16_t counting_tag = 0xFFFF;
  /// Renumber forwarded records' per-stream sequence so the throttled
  /// output remains a contiguous stream (required when it feeds a causally
  /// ordering ISM — suppressed records must not leave seq gaps).
  bool renumber_seq = true;
};

class TracingThrottle {
 public:
  TracingThrottle(ThrottleConfig config, EventSink downstream);

  /// The decorated sink: feed every would-be record here.
  void offer(const trace::EventRecord& r);

  TraceLevel level() const { return level_.load(std::memory_order_relaxed); }
  double estimated_rate_per_sec() const;
  std::uint64_t offered() const { return offered_.load(); }
  std::uint64_t forwarded() const { return forwarded_.load(); }
  std::uint64_t suppressed() const {
    return offered_.load() - forwarded_.load();
  }
  std::uint64_t level_changes() const { return level_changes_.load(); }

  /// Pins the level (disables adaptation); pass kFull..kOff.
  void pin(TraceLevel lvl);
  void unpin() { pinned_.store(false); }

  /// Attaches the model-time observability sink (may be null).  The
  /// throttle becomes the pipeline's lineage capture point (pass
  /// capture=false to the downstream LIS's set_observer): every offered
  /// record is offered to the tracer, suppression is a kThrottle loss, and
  /// seq renumbering remaps tracked keys.  Level transitions land on the
  /// "throttle.level" timeline series.  Call before traffic begins.
  void set_observer(obs::PipelineObserver* o) { observer_ = o; }

 private:
  void maybe_transition(std::uint64_t now);
  /// `fresh` marks a record synthesized by the throttle itself (a counting
  /// window aggregate): it enters lineage as a new capture instead of
  /// remapping an existing one.
  void forward(const trace::EventRecord& r, bool fresh = false);
  void flush_window(std::uint64_t now, const trace::EventRecord& like);

  ThrottleConfig cfg_;
  EventSink down_;
  obs::PipelineObserver* observer_ = nullptr;
  std::mutex mu_;
  double mean_gap_ns_ = 0;
  std::uint64_t last_event_ns_ = 0;
  std::uint64_t last_transition_ns_ = 0;
  std::uint64_t window_start_ns_ = 0;
  std::uint64_t window_count_ = 0;
  std::uint32_t stride_cursor_ = 0;
  std::uint64_t out_seq_ = 0;
  std::atomic<TraceLevel> level_{TraceLevel::kFull};
  std::atomic<bool> pinned_{false};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> level_changes_{0};
};

}  // namespace prism::core
