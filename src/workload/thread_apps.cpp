#include "workload/thread_apps.hpp"

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "core/clock.hpp"

namespace prism::workload {

namespace {

trace::EventRecord make_event(std::uint32_t node, std::uint32_t process,
                              trace::EventKind kind, std::uint16_t tag,
                              std::uint32_t peer, std::uint64_t payload,
                              std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = core::now_ns();
  r.node = node;
  r.process = process;
  r.kind = kind;
  r.tag = tag;
  r.peer = peer;
  r.payload = payload;
  r.seq = seq;
  return r;
}

}  // namespace

double burn_cpu(std::uint64_t iters) {
  double x = 1.000000001;
  for (std::uint64_t i = 0; i < iters; ++i) x = x * 1.000000001 + 1e-12;
  return x;
}

ThreadAppReport run_ring_threads(core::IntegratedEnvironment& env,
                                 unsigned rounds, std::uint64_t work_iters) {
  const std::uint32_t P = env.config().nodes;
  const std::uint64_t t0 = core::now_ns();
  ThreadAppReport rep;
  if (P < 2 || rounds == 0) return rep;

  // One channel per edge of the ring; token is a round counter.
  std::vector<std::unique_ptr<core::Channel<unsigned>>> links;
  links.reserve(P);
  for (std::uint32_t i = 0; i < P; ++i)
    links.push_back(std::make_unique<core::Channel<unsigned>>(4));

  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> events{0};
  std::atomic<double> checksum{0};

  auto worker = [&](std::uint32_t n) {
    std::uint64_t seq = 0;
    double local = 0;
    // Node 0 launches the token so every recv has a recorded matching send
    // (the ISM's causal reorderer depends on that pairing).
    if (n == 0) {
      env.record(make_event(0, 0, trace::EventKind::kSend, 1, 1 % P, 0,
                            seq++));
      events.fetch_add(1, std::memory_order_relaxed);
      messages.fetch_add(1, std::memory_order_relaxed);
      links[1 % P]->push(0u);
    }
    // links[n] delivers to node n; node n forwards on links[(n+1)%P].
    for (;;) {
      auto token = links[n]->pop();
      if (!token) break;
      env.record(make_event(n, 0, trace::EventKind::kRecv, 1,
                            (n + P - 1) % P, *token, seq++));
      events.fetch_add(1, std::memory_order_relaxed);
      local += burn_cpu(work_iters);
      const unsigned next = (n == P - 1) ? *token + 1 : *token;
      if (next >= rounds && n == P - 1) {
        env.record(make_event(n, 0, trace::EventKind::kUserEvent, 2, 0,
                              next, seq++));
        events.fetch_add(1, std::memory_order_relaxed);
        break;  // token retired after the final full circulation
      }
      env.record(
          make_event(n, 0, trace::EventKind::kSend, 1, (n + 1) % P, next,
                     seq++));
      events.fetch_add(1, std::memory_order_relaxed);
      messages.fetch_add(1, std::memory_order_relaxed);
      links[(n + 1) % P]->push(next);
    }
    checksum.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t n = 0; n < P; ++n) threads.emplace_back(worker, n);
  // The run ends when node P-1 retires the token; close all links so the
  // other workers' pops return.
  threads.back().join();
  threads.pop_back();
  for (auto& l : links) l->close();
  for (auto& t : threads) t.join();

  rep.messages = messages.load();
  rep.events_recorded = events.load();
  rep.wall_ns = core::now_ns() - t0;
  rep.checksum = checksum.load();
  return rep;
}

ThreadAppReport run_phases_threads(core::IntegratedEnvironment& env,
                                   unsigned phases,
                                   std::uint64_t work_iters) {
  const std::uint32_t P = env.config().nodes;
  const std::uint64_t t0 = core::now_ns();
  ThreadAppReport rep;
  if (P == 0 || phases == 0) return rep;

  std::atomic<std::uint64_t> events{0};
  std::atomic<double> checksum{0};
  std::barrier sync(static_cast<std::ptrdiff_t>(P));

  auto worker = [&](std::uint32_t n) {
    std::uint64_t seq = 0;
    double local = 0;
    for (unsigned ph = 0; ph < phases; ++ph) {
      env.record(make_event(n, 0, trace::EventKind::kBlockBegin, 10, 0, ph,
                            seq++));
      local += burn_cpu(work_iters);
      env.record(
          make_event(n, 0, trace::EventKind::kBlockEnd, 10, 0, ph, seq++));
      env.record(
          make_event(n, 0, trace::EventKind::kBarrier, 11, 0, ph, seq++));
      events.fetch_add(3, std::memory_order_relaxed);
      sync.arrive_and_wait();
    }
    checksum.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t n = 0; n < P; ++n) threads.emplace_back(worker, n);
  for (auto& t : threads) t.join();

  rep.events_recorded = events.load();
  rep.wall_ns = core::now_ns() - t0;
  rep.checksum = checksum.load();
  return rep;
}

ThreadAppReport run_sampling_threads(core::IntegratedEnvironment& env,
                                     unsigned metric_count,
                                     double samples_per_sec_per_thread,
                                     unsigned duration_ms) {
  const std::uint32_t nodes = env.config().nodes;
  const std::uint32_t per_node = env.config().processes_per_node;
  const std::uint64_t t0 = core::now_ns();
  ThreadAppReport rep;
  if (nodes == 0 || metric_count == 0 || !(samples_per_sec_per_thread > 0))
    return rep;

  const auto gap = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / samples_per_sec_per_thread));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration_ms);
  std::atomic<std::uint64_t> events{0};

  auto worker = [&](std::uint32_t node, std::uint32_t proc) {
    std::uint64_t seq = 0;
    double phase = static_cast<double>(node * 31 + proc * 7);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint16_t m = 0; m < metric_count; ++m) {
        const double value = 50.0 + 40.0 * std::sin(phase + m);
        auto r = make_event(node, proc, trace::EventKind::kSample, m, 0,
                            trace::pack_double(value), seq++);
        env.record(r);
        events.fetch_add(1, std::memory_order_relaxed);
      }
      phase += 0.1;
      std::this_thread::sleep_for(gap);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nodes) * per_node);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint32_t p = 0; p < per_node; ++p)
      threads.emplace_back(worker, n, p);
  for (auto& t : threads) t.join();

  rep.events_recorded = events.load();
  rep.wall_ns = core::now_ns() - t0;
  return rep;
}

}  // namespace prism::workload
