// Simulated distributed-memory multicomputer.
//
// Substitution (see DESIGN.md): the paper's PICL case study targets machines
// like the nCUBE and Intel Paragon; we stand up a P-node message-passing
// machine on the discrete-event engine.  Message transmission takes
// latency_base + latency_per_byte * bytes; every send and delivery can emit
// an instrumentation event through a pluggable hook — that hook is where the
// PICL-style library LIS taps the machine, exactly like wrapped
// communication calls tap a real one.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "trace/record.hpp"

namespace prism::workload {

struct SimMessage {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint16_t tag = 0;
  std::uint64_t bytes = 0;
  std::uint64_t payload = 0;
  sim::Time t_sent = 0;
  sim::Time t_delivered = 0;
};

class Multicomputer {
 public:
  /// Times are engine units (the case studies use milliseconds);
  /// `time_scale_ns` converts engine time to EventRecord nanoseconds
  /// (default: 1 engine unit = 1 ms = 1e6 ns).
  Multicomputer(sim::Engine& eng, std::uint32_t nodes, double latency_base,
                double latency_per_byte, double time_scale_ns = 1e6);

  std::uint32_t nodes() const { return static_cast<std::uint32_t>(receivers_.size()); }
  sim::Engine& engine() { return eng_; }

  /// Installs node `node`'s message handler.
  void set_receiver(std::uint32_t node,
                    std::function<void(const SimMessage&)> handler);

  /// Installs the instrumentation hook: called with a kSend record at each
  /// send and a kRecv record at each delivery.  This is the LIS tap.
  void set_instrumentation(std::function<void(const trace::EventRecord&)> hook) {
    instrument_ = std::move(hook);
  }

  /// Sends a message; the receiver's handler runs after the modeled latency.
  void send(std::uint32_t from, std::uint32_t to, std::uint16_t tag,
            std::uint64_t bytes, std::uint64_t payload = 0);

  /// Emits a user-defined instrumentation event from a node (the
  /// tracedata()-style call of instrumentation libraries).
  void user_event(std::uint32_t node, std::uint16_t tag,
                  std::uint64_t payload = 0);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t bytes_sent() const { return bytes_; }

  /// EventRecord timestamp for the current engine time.
  std::uint64_t timestamp_now() const {
    return static_cast<std::uint64_t>(eng_.now() * time_scale_ns_);
  }

  /// Nanoseconds per engine time unit.
  double time_scale_ns() const { return time_scale_ns_; }

 private:
  void emit(std::uint32_t node, trace::EventKind kind, std::uint16_t tag,
            std::uint32_t peer, std::uint64_t payload);

  sim::Engine& eng_;
  double latency_base_;
  double latency_per_byte_;
  double time_scale_ns_;
  std::vector<std::function<void(const SimMessage&)>> receivers_;
  std::function<void(const trace::EventRecord&)> instrument_;
  std::vector<std::uint64_t> seq_;  ///< per-node instrumentation seq numbers
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace prism::workload
