// Real, thread-based instrumented workloads for the live IS.
//
// Where apps.hpp drives the *simulated* multicomputer, these run actual
// std::thread "nodes" exchanging messages over in-process channels, with
// instrumentation events recorded through an IntegratedEnvironment's LISes.
// They exist so the live LIS/ISM/TP stack is exercised end-to-end by the
// test suite, the examples, and the live-vs-model validation bench.
#pragma once

#include <cstdint>

#include "core/environment.hpp"

namespace prism::workload {

struct ThreadAppReport {
  std::uint64_t messages = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t wall_ns = 0;
  double checksum = 0;  ///< defeats dead-code elimination of the kernels
};

/// Spins the CPU for roughly `iters` dependent multiply-adds; returns a
/// value that must be consumed.
double burn_cpu(std::uint64_t iters);

/// Token ring over `env.config().nodes` threads, `rounds` circulations,
/// `work_iters` of compute per hop.  Each hop records kSend/kRecv events
/// (plus a kUserEvent per round) into the owning node's LIS.
ThreadAppReport run_ring_threads(core::IntegratedEnvironment& env,
                                 unsigned rounds, std::uint64_t work_iters);

/// Fork-join compute phases: every thread runs `phases` phases of
/// `work_iters` work bracketed by kBlockBegin/kBlockEnd, with a barrier
/// (kBarrier event) between phases.
ThreadAppReport run_phases_threads(core::IntegratedEnvironment& env,
                                   unsigned phases, std::uint64_t work_iters);

/// Sampling workload for daemon LISes: every thread emits kSample metric
/// records (tag = metric id) at the given approximate rate for `duration_ms`.
ThreadAppReport run_sampling_threads(core::IntegratedEnvironment& env,
                                     unsigned metric_count,
                                     double samples_per_sec_per_thread,
                                     unsigned duration_ms);

}  // namespace prism::workload
