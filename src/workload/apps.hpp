// Synthetic message-passing applications on the simulated multicomputer.
//
// These are the instrumented workloads of the case studies: programs whose
// communication structure generates the event-arrival processes the IS
// models consume.  Three canonical SC-era kernels:
//   * Ring      — a token circulates; one message in flight (low, regular
//                 event rate per node).
//   * Stencil   — 1-D halo exchange each iteration (bursty, synchronized
//                 arrivals at all nodes: the FAOF-friendly regime).
//   * MasterWorker — a master farms tasks to workers (skewed arrivals:
//                 the master's buffer fills much faster — FOF-vs-FAOF
//                 worst case).
// Each app runs to completion on the engine and reports message counts.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/engine.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "workload/multicomputer.hpp"

namespace prism::workload {

struct AppReport {
  std::uint64_t messages = 0;
  std::uint64_t user_events = 0;
  sim::Time makespan = 0;
};

/// Token ring: `rounds` full circulations; each node computes for a
/// compute-time draw before forwarding the token.
AppReport run_ring_app(Multicomputer& mc, unsigned rounds,
                       const stats::Distribution& compute, stats::Rng rng,
                       std::uint64_t message_bytes = 64);

/// 1-D periodic halo exchange: every node sends to both neighbours each
/// iteration, computes when both halos arrive, repeats for `iterations`.
AppReport run_stencil_app(Multicomputer& mc, unsigned iterations,
                          const stats::Distribution& compute, stats::Rng rng,
                          std::uint64_t halo_bytes = 1024);

/// Master (node 0) farms `tasks` tasks over the workers; each worker
/// computes a task-time draw and replies; the master reassigns until done.
AppReport run_master_worker_app(Multicomputer& mc, unsigned tasks,
                                const stats::Distribution& task_time,
                                stats::Rng rng,
                                std::uint64_t task_bytes = 256,
                                std::uint64_t result_bytes = 128);

/// All-to-all personalized exchange, `rounds` times: every node sends one
/// message to every other node, computes when all P-1 arrive, repeats.
/// The burstiest arrival pattern per node (the FAOF-friendly extreme).
AppReport run_alltoall_app(Multicomputer& mc, unsigned rounds,
                           const stats::Distribution& compute, stats::Rng rng,
                           std::uint64_t message_bytes = 512);

/// Pipelined wavefront: node 0 produces `items` work items; each node
/// computes on an item then passes it to the next node (a software
/// pipeline).  Skewed steady-state load: interior nodes saturate while the
/// ends idle in/out — the FOF-friendly extreme.
AppReport run_wavefront_app(Multicomputer& mc, unsigned items,
                            const stats::Distribution& stage_time,
                            stats::Rng rng, std::uint64_t item_bytes = 256);

}  // namespace prism::workload
