#include "workload/multicomputer.hpp"

namespace prism::workload {

Multicomputer::Multicomputer(sim::Engine& eng, std::uint32_t nodes,
                             double latency_base, double latency_per_byte,
                             double time_scale_ns)
    : eng_(eng),
      latency_base_(latency_base),
      latency_per_byte_(latency_per_byte),
      time_scale_ns_(time_scale_ns),
      receivers_(nodes),
      seq_(nodes, 0) {
  if (nodes == 0) throw std::invalid_argument("Multicomputer: 0 nodes");
  if (latency_base < 0 || latency_per_byte < 0)
    throw std::invalid_argument("Multicomputer: negative latency");
}

void Multicomputer::set_receiver(
    std::uint32_t node, std::function<void(const SimMessage&)> handler) {
  receivers_.at(node) = std::move(handler);
}

void Multicomputer::emit(std::uint32_t node, trace::EventKind kind,
                         std::uint16_t tag, std::uint32_t peer,
                         std::uint64_t payload) {
  if (!instrument_) return;
  trace::EventRecord r;
  r.timestamp = timestamp_now();
  r.node = node;
  r.process = 0;
  r.kind = kind;
  r.tag = tag;
  r.peer = peer;
  r.payload = payload;
  r.seq = seq_[node]++;
  instrument_(r);
}

void Multicomputer::send(std::uint32_t from, std::uint32_t to,
                         std::uint16_t tag, std::uint64_t bytes,
                         std::uint64_t payload) {
  if (from >= nodes() || to >= nodes())
    throw std::out_of_range("Multicomputer::send: bad node");
  SimMessage m;
  m.from = from;
  m.to = to;
  m.tag = tag;
  m.bytes = bytes;
  m.payload = payload;
  m.t_sent = eng_.now();
  ++sent_;
  bytes_ += bytes;
  emit(from, trace::EventKind::kSend, tag, to, bytes);
  const double latency =
      latency_base_ + latency_per_byte_ * static_cast<double>(bytes);
  eng_.schedule_after(latency, [this, m]() mutable {
    m.t_delivered = eng_.now();
    ++delivered_;
    emit(m.to, trace::EventKind::kRecv, m.tag, m.from, m.bytes);
    if (receivers_[m.to]) receivers_[m.to](m);
  });
}

void Multicomputer::user_event(std::uint32_t node, std::uint16_t tag,
                               std::uint64_t payload) {
  if (node >= nodes())
    throw std::out_of_range("Multicomputer::user_event: bad node");
  emit(node, trace::EventKind::kUserEvent, tag, 0, payload);
}

}  // namespace prism::workload
