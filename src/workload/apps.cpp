#include "workload/apps.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace prism::workload {

namespace {

constexpr std::uint16_t kRingTag = 1;
constexpr std::uint16_t kHaloLeftTag = 2;
constexpr std::uint16_t kHaloRightTag = 3;
constexpr std::uint16_t kTaskTag = 4;
constexpr std::uint16_t kResultTag = 5;

}  // namespace

AppReport run_ring_app(Multicomputer& mc, unsigned rounds,
                       const stats::Distribution& compute, stats::Rng rng,
                       std::uint64_t message_bytes) {
  if (rounds == 0) throw std::invalid_argument("run_ring_app: 0 rounds");
  const std::uint32_t P = mc.nodes();
  auto& eng = mc.engine();
  // Shared state survives until the engine drains.
  struct State {
    unsigned hops_left;
    stats::Rng rng;
  };
  auto st = std::make_shared<State>(State{rounds * P, rng});

  for (std::uint32_t n = 0; n < P; ++n) {
    mc.set_receiver(n, [&mc, &eng, &compute, st, n, P,
                        message_bytes](const SimMessage& m) {
      if (m.tag != kRingTag) return;
      if (st->hops_left == 0) return;
      --st->hops_left;
      if (st->hops_left == 0) return;
      const double work = compute.sample(st->rng);
      eng.schedule_after(work, [&mc, st, n, P, message_bytes] {
        mc.user_event(n, 100, st->hops_left);
        mc.send(n, (n + 1) % P, kRingTag, message_bytes);
      });
    });
  }
  // Kick off: node 0 computes then launches the token.
  const double work0 = compute.sample(st->rng);
  eng.schedule_after(work0, [&mc, P, message_bytes] {
    mc.send(0, 1 % P, kRingTag, message_bytes);
  });
  eng.run();

  AppReport rep;
  rep.messages = mc.messages_sent();
  rep.makespan = eng.now();
  return rep;
}

AppReport run_stencil_app(Multicomputer& mc, unsigned iterations,
                          const stats::Distribution& compute, stats::Rng rng,
                          std::uint64_t halo_bytes) {
  if (iterations == 0) throw std::invalid_argument("run_stencil_app: 0 iters");
  const std::uint32_t P = mc.nodes();
  if (P < 2) throw std::invalid_argument("run_stencil_app: needs >= 2 nodes");
  auto& eng = mc.engine();

  struct NodeState {
    unsigned iter = 0;       // current iteration being assembled
    unsigned have_left = 0;  // halos received for `iter` (counts per side)
    unsigned have_right = 0;
    stats::Rng rng{0};
  };
  struct State {
    std::vector<NodeState> nodes;
    unsigned iterations;
    std::uint64_t halo_bytes;
    std::uint64_t user_events = 0;
  };
  auto st = std::make_shared<State>();
  st->nodes.resize(P);
  st->iterations = iterations;
  st->halo_bytes = halo_bytes;
  for (auto& ns : st->nodes) ns.rng = rng.split();

  // advance(): when node n has both halos for its current iteration, it
  // computes, emits a user event, and sends the next iteration's halos.
  auto send_halos = [&mc, st, P](std::uint32_t n) {
    const std::uint32_t left = (n + P - 1) % P;
    const std::uint32_t right = (n + 1) % P;
    mc.send(n, left, kHaloRightTag, st->halo_bytes);   // arrives as right halo
    mc.send(n, right, kHaloLeftTag, st->halo_bytes);   // arrives as left halo
  };

  std::function<void(std::uint32_t)> advance =
      [&eng, &mc, &compute, st, send_halos, &advance, P](std::uint32_t n) {
        NodeState& ns = st->nodes[n];
        if (ns.have_left == 0 || ns.have_right == 0) return;
        --ns.have_left;
        --ns.have_right;
        const double work = compute.sample(ns.rng);
        eng.schedule_after(work, [&mc, st, send_halos, &advance, n] {
          NodeState& ns2 = st->nodes[n];
          mc.user_event(n, 101, ns2.iter);
          ++st->user_events;
          ++ns2.iter;
          if (ns2.iter < st->iterations) {
            send_halos(n);
          }
          // A queued pair of halos for the new iteration may already be in.
          advance(n);
        });
      };

  for (std::uint32_t n = 0; n < P; ++n) {
    mc.set_receiver(n, [st, &advance, n](const SimMessage& m) {
      NodeState& ns = st->nodes[n];
      if (m.tag == kHaloLeftTag)
        ++ns.have_left;
      else if (m.tag == kHaloRightTag)
        ++ns.have_right;
      else
        return;
      advance(n);
    });
  }
  // Iteration 0: everyone sends halos.
  for (std::uint32_t n = 0; n < P; ++n) send_halos(n);
  eng.run();

  AppReport rep;
  rep.messages = mc.messages_sent();
  rep.user_events = st->user_events;
  rep.makespan = eng.now();
  return rep;
}

AppReport run_master_worker_app(Multicomputer& mc, unsigned tasks,
                                const stats::Distribution& task_time,
                                stats::Rng rng, std::uint64_t task_bytes,
                                std::uint64_t result_bytes) {
  const std::uint32_t P = mc.nodes();
  if (P < 2)
    throw std::invalid_argument("run_master_worker_app: needs >= 2 nodes");
  if (tasks == 0) throw std::invalid_argument("run_master_worker_app: 0 tasks");
  auto& eng = mc.engine();

  struct State {
    unsigned next_task = 0;
    unsigned done = 0;
    unsigned total;
    std::uint64_t task_bytes, result_bytes;
    std::vector<stats::Rng> worker_rng;
  };
  auto st = std::make_shared<State>();
  st->total = tasks;
  st->task_bytes = task_bytes;
  st->result_bytes = result_bytes;
  for (std::uint32_t w = 0; w < P; ++w) st->worker_rng.push_back(rng.split());

  // Master: on a result, dispatch the next task to that worker.
  mc.set_receiver(0, [&mc, st](const SimMessage& m) {
    if (m.tag != kResultTag) return;
    ++st->done;
    if (st->next_task < st->total) {
      const unsigned id = st->next_task++;
      mc.send(0, m.from, kTaskTag, st->task_bytes, id);
    }
  });
  // Workers: compute then reply.
  for (std::uint32_t w = 1; w < P; ++w) {
    mc.set_receiver(w, [&mc, &eng, &task_time, st, w](const SimMessage& m) {
      if (m.tag != kTaskTag) return;
      const double work = task_time.sample(st->worker_rng[w]);
      eng.schedule_after(work, [&mc, st, w, id = m.payload] {
        mc.user_event(w, 102, id);
        mc.send(w, 0, kResultTag, st->result_bytes, id);
      });
    });
  }
  // Initial distribution: one task per worker (or fewer).
  for (std::uint32_t w = 1; w < P && st->next_task < st->total; ++w) {
    const unsigned id = st->next_task++;
    mc.send(0, w, kTaskTag, st->task_bytes, id);
  }
  eng.run();

  AppReport rep;
  rep.messages = mc.messages_sent();
  rep.user_events = st->done;
  rep.makespan = eng.now();
  return rep;
}

AppReport run_alltoall_app(Multicomputer& mc, unsigned rounds,
                           const stats::Distribution& compute, stats::Rng rng,
                           std::uint64_t message_bytes) {
  if (rounds == 0) throw std::invalid_argument("run_alltoall_app: 0 rounds");
  const std::uint32_t P = mc.nodes();
  if (P < 2) throw std::invalid_argument("run_alltoall_app: needs >= 2 nodes");
  auto& eng = mc.engine();

  constexpr std::uint16_t kExchangeTag = 6;
  struct NodeState {
    unsigned received = 0;
    unsigned round = 0;
    stats::Rng rng{0};
  };
  struct State {
    std::vector<NodeState> nodes;
    unsigned rounds;
    std::uint64_t bytes;
    std::uint64_t user_events = 0;
  };
  auto st = std::make_shared<State>();
  st->nodes.resize(P);
  st->rounds = rounds;
  st->bytes = message_bytes;
  for (auto& ns : st->nodes) ns.rng = rng.split();

  auto send_round = [&mc, st, P](std::uint32_t n) {
    for (std::uint32_t peer = 0; peer < P; ++peer)
      if (peer != n) mc.send(n, peer, kExchangeTag, st->bytes);
  };

  for (std::uint32_t n = 0; n < P; ++n) {
    mc.set_receiver(n, [&mc, &eng, &compute, st, send_round, n,
                        P](const SimMessage& m) {
      if (m.tag != kExchangeTag) return;
      NodeState& ns = st->nodes[n];
      if (++ns.received < P - 1) return;
      ns.received = 0;
      const double work = compute.sample(ns.rng);
      eng.schedule_after(work, [&mc, st, send_round, n] {
        NodeState& ns2 = st->nodes[n];
        mc.user_event(n, 103, ns2.round);
        ++st->user_events;
        if (++ns2.round < st->rounds) send_round(n);
      });
    });
  }
  for (std::uint32_t n = 0; n < P; ++n) send_round(n);
  eng.run();

  AppReport rep;
  rep.messages = mc.messages_sent();
  rep.user_events = st->user_events;
  rep.makespan = eng.now();
  return rep;
}

AppReport run_wavefront_app(Multicomputer& mc, unsigned items,
                            const stats::Distribution& stage_time,
                            stats::Rng rng, std::uint64_t item_bytes) {
  if (items == 0) throw std::invalid_argument("run_wavefront_app: 0 items");
  const std::uint32_t P = mc.nodes();
  if (P < 2) throw std::invalid_argument("run_wavefront_app: needs >= 2 nodes");
  auto& eng = mc.engine();

  constexpr std::uint16_t kItemTag = 7;
  struct NodeState {
    bool busy = false;
    std::vector<std::uint64_t> backlog;  // item ids waiting at this stage
    stats::Rng rng{0};
  };
  struct State {
    std::vector<NodeState> nodes;
    std::uint64_t bytes;
    std::uint64_t completed = 0;
  };
  auto st = std::make_shared<State>();
  st->nodes.resize(P);
  st->bytes = item_bytes;
  for (auto& ns : st->nodes) ns.rng = rng.split();

  // Each stage: when idle and backlogged, compute then forward (or retire
  // at the last stage).
  std::function<void(std::uint32_t)> pump = [&mc, &eng, &stage_time, st,
                                             &pump, P](std::uint32_t n) {
    NodeState& ns = st->nodes[n];
    if (ns.busy || ns.backlog.empty()) return;
    ns.busy = true;
    const std::uint64_t item = ns.backlog.front();
    ns.backlog.erase(ns.backlog.begin());
    const double work = stage_time.sample(ns.rng);
    eng.schedule_after(work, [&mc, st, &pump, n, item, P] {
      NodeState& ns2 = st->nodes[n];
      ns2.busy = false;
      if (n + 1 < P) {
        mc.send(n, n + 1, kItemTag, st->bytes, item);
      } else {
        mc.user_event(n, 104, item);
        ++st->completed;
      }
      pump(n);
    });
  };

  for (std::uint32_t n = 0; n < P; ++n) {
    mc.set_receiver(n, [st, &pump, n](const SimMessage& m) {
      if (m.tag != kItemTag) return;
      st->nodes[n].backlog.push_back(m.payload);
      pump(n);
    });
  }
  // Source: node 0's backlog holds every item up front.
  for (std::uint64_t i = 0; i < items; ++i) st->nodes[0].backlog.push_back(i);
  pump(0);
  eng.run();

  AppReport rep;
  rep.messages = mc.messages_sent();
  rep.user_events = st->completed;
  rep.makespan = eng.now();
  return rep;
}

}  // namespace prism::workload
