#include "trace/file.hpp"

#include <cstring>
#include <stdexcept>

namespace prism::trace {

TraceFileWriter::TraceFileWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) throw std::runtime_error("TraceFileWriter: cannot open " +
                                      path.string());
  TraceFileHeader hdr;
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
  if (!out_) throw std::runtime_error("TraceFileWriter: header write failed");
}

TraceFileWriter::~TraceFileWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an incomplete file is detectable via the
    // header count mismatch.
  }
}

void TraceFileWriter::write(const EventRecord& r) {
  out_.write(reinterpret_cast<const char*>(&r), sizeof r);
  if (!out_) throw std::runtime_error("TraceFileWriter: write failed");
  ++count_;
}

void TraceFileWriter::write(const std::vector<EventRecord>& batch) {
  if (batch.empty()) return;
  out_.write(reinterpret_cast<const char*>(batch.data()),
             static_cast<std::streamsize>(batch.size() * sizeof(EventRecord)));
  if (!out_) throw std::runtime_error("TraceFileWriter: batch write failed");
  count_ += batch.size();
}

void TraceFileWriter::close() {
  if (closed_) return;
  closed_ = true;
  TraceFileHeader hdr;
  hdr.record_count = count_;
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
  out_.close();
  if (!out_) throw std::runtime_error("TraceFileWriter: close failed");
}

TraceFileReader::TraceFileReader(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TraceFileReader: cannot open " +
                                    path.string());
  TraceFileHeader hdr;
  in.read(reinterpret_cast<char*>(&hdr), sizeof hdr);
  if (!in || hdr.magic != TraceFileHeader::kMagic)
    throw std::runtime_error("TraceFileReader: bad magic in " + path.string());
  if (hdr.record_size != sizeof(EventRecord))
    throw std::runtime_error("TraceFileReader: record size mismatch");
  records_.resize(hdr.record_count);
  in.read(reinterpret_cast<char*>(records_.data()),
          static_cast<std::streamsize>(hdr.record_count * sizeof(EventRecord)));
  if (!in) throw std::runtime_error("TraceFileReader: truncated file " +
                                    path.string());
}

void write_csv(const std::filesystem::path& path,
               const std::vector<EventRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path.string());
  out << "timestamp,node,process,kind,tag,peer,payload,lamport,seq\n";
  for (const auto& r : records) {
    out << r.timestamp << ',' << r.node << ',' << r.process << ','
        << to_string(r.kind) << ',' << r.tag << ',' << r.peer << ','
        << r.payload << ',' << r.lamport << ',' << r.seq << '\n';
  }
  if (!out) throw std::runtime_error("write_csv: write failed");
}

}  // namespace prism::trace
