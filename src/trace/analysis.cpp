#include "trace/analysis.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>

namespace prism::trace {

namespace {

std::uint64_t channel_key(std::uint32_t from, std::uint32_t to,
                          std::uint16_t tag) {
  return (static_cast<std::uint64_t>(from) << 40) |
         (static_cast<std::uint64_t>(to) << 16) | tag;
}

std::uint64_t stream_key(const EventRecord& r) {
  return (static_cast<std::uint64_t>(r.node) << 32) | r.process;
}

}  // namespace

TraceAnalysis analyze_trace(const std::vector<EventRecord>& records) {
  TraceAnalysis out;
  if (records.empty()) return out;

  std::uint32_t max_node = 0;
  for (const auto& r : records) max_node = std::max(max_node, r.node);
  out.nodes.resize(max_node + 1);
  for (std::uint32_t n = 0; n <= max_node; ++n) out.nodes[n].node = n;
  out.comm_matrix.assign(max_node + 1,
                         std::vector<std::uint64_t>(max_node + 1, 0));

  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  // Per-node first/last timestamps; per-stream open block/flush begins.
  std::vector<std::uint64_t> first(max_node + 1, UINT64_MAX);
  std::vector<std::uint64_t> last(max_node + 1, 0);
  std::unordered_map<std::uint64_t, std::uint64_t> open_block, open_flush;
  // Unmatched sends per channel (FIFO), for message pairing.
  std::unordered_map<std::uint64_t, std::deque<const EventRecord*>> pending;

  for (const auto& r : records) {
    t_min = std::min(t_min, r.timestamp);
    t_max = std::max(t_max, r.timestamp);
    NodeActivity& na = out.nodes[r.node];
    ++na.events;
    first[r.node] = std::min(first[r.node], r.timestamp);
    last[r.node] = std::max(last[r.node], r.timestamp);

    switch (r.kind) {
      case EventKind::kSend: {
        ++na.sends;
        na.bytes_sent += r.payload;
        out.comm_matrix[r.node][std::min(r.peer, max_node)] += 1;
        pending[channel_key(r.node, r.peer, r.tag)].push_back(&r);
        break;
      }
      case EventKind::kRecv: {
        ++na.recvs;
        auto& q = pending[channel_key(r.peer, r.node, r.tag)];
        if (!q.empty()) {
          const EventRecord* s = q.front();
          q.pop_front();
          MessageEdge e;
          e.from = s->node;
          e.to = r.node;
          e.tag = r.tag;
          e.t_send = s->timestamp;
          e.t_recv = r.timestamp;
          if (e.t_recv >= e.t_send) {
            out.message_latency.add(static_cast<double>(e.latency()));
            out.messages.push_back(e);
          } else {
            ++out.unmatched_recvs;  // reversed pair: corrupt ordering
          }
        } else {
          ++out.unmatched_recvs;
        }
        break;
      }
      case EventKind::kBlockBegin:
        open_block[stream_key(r)] = r.timestamp;
        break;
      case EventKind::kBlockEnd: {
        auto it = open_block.find(stream_key(r));
        if (it != open_block.end() && r.timestamp >= it->second) {
          na.block_time += r.timestamp - it->second;
          open_block.erase(it);
        }
        break;
      }
      case EventKind::kFlushBegin:
        open_flush[stream_key(r)] = r.timestamp;
        break;
      case EventKind::kFlushEnd: {
        auto it = open_flush.find(stream_key(r));
        if (it != open_flush.end() && r.timestamp >= it->second) {
          na.flush_time += r.timestamp - it->second;
          open_flush.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  for (auto& [ch, q] : pending) out.unmatched_sends += q.size();
  for (std::uint32_t n = 0; n <= max_node; ++n) {
    if (first[n] != UINT64_MAX)
      out.nodes[n].active_span = last[n] - first[n];
  }
  out.span = t_max - t_min;
  return out;
}

std::string TraceAnalysis::to_string() const {
  std::ostringstream os;
  os << "trace analysis: span " << span << ", " << messages.size()
     << " matched messages (mean latency " << message_latency.mean() << ", "
     << unmatched_sends << " unmatched sends, " << unmatched_recvs
     << " unmatched recvs)\n";
  for (const auto& n : nodes) {
    os << "  node " << n.node << ": " << n.events << " events, " << n.sends
       << " sends (" << n.bytes_sent << " B), " << n.recvs << " recvs";
    if (n.block_time) os << ", block time " << n.block_time;
    if (n.flush_time) os << ", IS flush time " << n.flush_time;
    os << "\n";
  }
  return os.str();
}

CriticalPath critical_path(const std::vector<EventRecord>& records) {
  CriticalPath cp;
  if (records.empty()) return cp;
  // Longest-path DP over the happens-before DAG.  dist[i] = (duration,
  // hops, msg_hops) of the longest chain ending at record i.  Records are
  // processed in a dependency-respecting order: per-stream seq order with
  // recvs after their matched sends — a merged time-ordered trace gives
  // that directly when the trace is causally valid; otherwise we fall back
  // to timestamp order, which still yields a sound lower bound.
  struct Dist {
    std::uint64_t dur = 0;
    std::size_t hops = 1;
    std::size_t msg_hops = 0;
  };
  std::vector<Dist> dist(records.size());
  std::unordered_map<std::uint64_t, std::size_t> last_in_stream;
  std::unordered_map<std::uint64_t, std::deque<std::size_t>> pending_sends;

  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return RecordOrder{}(records[a], records[b]);
                   });

  Dist best;
  best.dur = 0;
  best.hops = 0;
  for (std::size_t idx : order) {
    const EventRecord& r = records[idx];
    Dist d;  // chain of just this event
    // Program-order predecessor.
    const auto sk = stream_key(r);
    auto sit = last_in_stream.find(sk);
    if (sit != last_in_stream.end()) {
      const EventRecord& prev = records[sit->second];
      if (r.timestamp >= prev.timestamp) {
        const Dist& pd = dist[sit->second];
        d.dur = pd.dur + (r.timestamp - prev.timestamp);
        d.hops = pd.hops + 1;
        d.msg_hops = pd.msg_hops;
      }
    }
    // Message predecessor (for recvs).
    if (r.kind == EventKind::kRecv) {
      auto& q = pending_sends[channel_key(r.peer, r.node, r.tag)];
      if (!q.empty()) {
        const std::size_t sidx = q.front();
        q.pop_front();
        const EventRecord& s = records[sidx];
        if (r.timestamp >= s.timestamp) {
          const Dist& sd = dist[sidx];
          const std::uint64_t via_msg =
              sd.dur + (r.timestamp - s.timestamp);
          if (via_msg > d.dur) {
            d.dur = via_msg;
            d.hops = sd.hops + 1;
            d.msg_hops = sd.msg_hops + 1;
          }
        }
      }
    }
    if (r.kind == EventKind::kSend)
      pending_sends[channel_key(r.node, r.peer, r.tag)].push_back(idx);
    dist[idx] = d;
    last_in_stream[sk] = idx;
    if (d.dur > best.dur || (d.dur == best.dur && d.hops > best.hops))
      best = d;
  }
  cp.duration = best.dur;
  cp.events = best.hops;
  cp.message_hops = best.msg_hops;
  return cp;
}

ArrivalCharacterization characterize_arrivals(
    const std::vector<EventRecord>& records) {
  ArrivalCharacterization out;
  std::unordered_map<std::uint64_t, std::uint64_t> last_ts;
  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  for (const auto& r : records) {
    t_min = std::min(t_min, r.timestamp);
    t_max = std::max(t_max, r.timestamp);
    auto [it, fresh] = last_ts.try_emplace(stream_key(r), r.timestamp);
    if (!fresh) {
      if (r.timestamp >= it->second)
        out.inter_arrival.add(static_cast<double>(r.timestamp - it->second));
      it->second = r.timestamp;
    }
  }
  out.streams = last_ts.size();
  if (t_max > t_min && !records.empty())
    out.rate = static_cast<double>(records.size()) /
               static_cast<double>(t_max - t_min);
  if (out.inter_arrival.count() > 1) {
    out.cv = out.inter_arrival.cov();
    // Burstiness: fraction of gaps below half the mean.
    // (Second pass over pooled gaps is avoided by an approximation via the
    // Summary; recompute exactly instead.)
  }
  // Exact burstiness needs the gap values; do a second pass.
  if (out.inter_arrival.count() > 0) {
    const double half_mean = 0.5 * out.inter_arrival.mean();
    std::unordered_map<std::uint64_t, std::uint64_t> last2;
    std::uint64_t below = 0, total = 0;
    for (const auto& r : records) {
      auto [it, fresh] = last2.try_emplace(stream_key(r), r.timestamp);
      if (!fresh) {
        if (r.timestamp >= it->second) {
          ++total;
          if (static_cast<double>(r.timestamp - it->second) < half_mean)
            ++below;
        }
        it->second = r.timestamp;
      }
    }
    if (total > 0)
      out.burstiness = static_cast<double>(below) / static_cast<double>(total);
  }
  return out;
}

}  // namespace prism::trace
