#include "trace/record.hpp"

#include <cstring>

namespace prism::trace {

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kUserEvent: return "user";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kBlockBegin: return "block_begin";
    case EventKind::kBlockEnd: return "block_end";
    case EventKind::kSample: return "sample";
    case EventKind::kFlushBegin: return "flush_begin";
    case EventKind::kFlushEnd: return "flush_end";
    case EventKind::kIo: return "io";
    case EventKind::kMemRef: return "memref";
    case EventKind::kControl: return "control";
    case EventKind::kBarrier: return "barrier";
    case EventKind::kTraceStart: return "trace_start";
    case EventKind::kTraceStop: return "trace_stop";
  }
  return "unknown";
}

std::uint64_t pack_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double unpack_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace prism::trace
