// Logical clocks.
//
// "To avoid problems due to the lack of a global clock, we use the technique
// of assigning logical time-stamps" (§3.3).  LamportClock implements the
// classic scalar clock the Vista ISM assigns to in-order arrivals;
// VectorClock provides the stronger happens-before test used by the causal
// checker in tests and the perturbation analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace prism::trace {

/// Scalar Lamport clock.
class LamportClock {
 public:
  /// Local event: advance and return the new stamp.
  std::uint64_t tick() { return ++time_; }

  /// Message receipt carrying `remote` stamp: merge then advance.
  std::uint64_t merge(std::uint64_t remote) {
    time_ = std::max(time_, remote);
    return ++time_;
  }

  std::uint64_t now() const { return time_; }

 private:
  std::uint64_t time_ = 0;
};

/// Fixed-width vector clock over `n` processes.
class VectorClock {
 public:
  explicit VectorClock(std::size_t n, std::size_t self)
      : v_(n, 0), self_(self) {
    if (self >= n) throw std::invalid_argument("VectorClock: self >= n");
  }

  /// Local event.
  const std::vector<std::uint64_t>& tick() {
    ++v_[self_];
    return v_;
  }

  /// Message receipt: component-wise max with sender's vector, then tick.
  const std::vector<std::uint64_t>& merge(
      const std::vector<std::uint64_t>& remote) {
    if (remote.size() != v_.size())
      throw std::invalid_argument("VectorClock: size mismatch");
    for (std::size_t i = 0; i < v_.size(); ++i)
      v_[i] = std::max(v_[i], remote[i]);
    ++v_[self_];
    return v_;
  }

  const std::vector<std::uint64_t>& value() const { return v_; }

  /// Happens-before: a < b iff a <= b component-wise and a != b.
  static bool happens_before(const std::vector<std::uint64_t>& a,
                             const std::vector<std::uint64_t>& b) {
    if (a.size() != b.size())
      throw std::invalid_argument("happens_before: size mismatch");
    bool strictly = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] > b[i]) return false;
      if (a[i] < b[i]) strictly = true;
    }
    return strictly;
  }

  static bool concurrent(const std::vector<std::uint64_t>& a,
                         const std::vector<std::uint64_t>& b) {
    return !happens_before(a, b) && !happens_before(b, a) && a != b;
  }

 private:
  std::vector<std::uint64_t> v_;
  std::size_t self_;
};

}  // namespace prism::trace
