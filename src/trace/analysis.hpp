// Off-line trace analysis — the consumer side of the off-line IS (what
// ParaGraph does with PICL traces, §3.1): per-node activity breakdowns,
// message statistics, the communication matrix, blocking-time analysis for
// receives, and a critical-path estimate through the message graph.
//
// All functions take a merged, time-ordered trace (the output of
// PiclInstrumentation::finalize() or a TraceFileReader).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "trace/record.hpp"

namespace prism::trace {

/// Per-node activity summary.
struct NodeActivity {
  std::uint32_t node = 0;
  std::uint64_t events = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_sent = 0;
  /// Time between this node's first and last event.
  std::uint64_t active_span = 0;
  /// Total time inside kBlockBegin/kBlockEnd pairs (busy/compute time).
  std::uint64_t block_time = 0;
  /// Total flush (IS-overhead) time from kFlushBegin/kFlushEnd pairs.
  std::uint64_t flush_time = 0;
};

/// Matched message with its measured latency.
struct MessageEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint16_t tag = 0;
  std::uint64_t t_send = 0;
  std::uint64_t t_recv = 0;
  std::uint64_t latency() const { return t_recv - t_send; }
};

struct TraceAnalysis {
  std::vector<NodeActivity> nodes;       ///< indexed by node id (dense)
  std::vector<MessageEdge> messages;     ///< every matched send/recv pair
  std::uint64_t unmatched_sends = 0;
  std::uint64_t unmatched_recvs = 0;
  stats::Summary message_latency;        ///< over matched messages
  /// comm_matrix[from][to] = messages sent (dense, nodes x nodes).
  std::vector<std::vector<std::uint64_t>> comm_matrix;
  std::uint64_t span = 0;                ///< global first..last event time

  std::string to_string() const;
};

/// Analyzes a merged trace.  Sends and receives are matched n-th to n-th per
/// (from, to, tag) channel, in timestamp order.
TraceAnalysis analyze_trace(const std::vector<EventRecord>& records);

/// Estimated critical path: the longest chain of happens-before-ordered
/// events (program order within a node plus message edges), weighted by the
/// time gaps between consecutive chain events.  Returns the chain's total
/// duration and its hop count.
struct CriticalPath {
  std::uint64_t duration = 0;
  std::size_t events = 0;
  std::size_t message_hops = 0;
};
CriticalPath critical_path(const std::vector<EventRecord>& records);

/// Per-(node,process) inter-arrival statistics of instrumentation events —
/// the workload-characterization input to the IS models ("appropriately
/// characterizing IS workload to enhance the power and accuracy of the
/// models", §5).
struct ArrivalCharacterization {
  stats::Summary inter_arrival;  ///< all per-stream gaps pooled
  double rate = 0;               ///< events per time unit, pooled
  double cv = 0;                 ///< coefficient of variation of gaps
  /// Burstiness index: fraction of gaps shorter than half the mean gap.
  double burstiness = 0;
  std::uint64_t streams = 0;
};
ArrivalCharacterization characterize_arrivals(
    const std::vector<EventRecord>& records);

}  // namespace prism::trace
