// Local trace buffers.
//
// PICL-style LISes "generate instrumentation data in a particular event
// record format and log the data in a local buffer of each node.  The user
// specifies the size of the buffer ... By default, data collection stops
// after a buffer becomes full" (§3.1).  TraceBuffer is a fixed-capacity,
// allocation-free-at-runtime array with a selectable overflow policy, and it
// accounts for everything the flush-policy analysis needs: fill events,
// drops, and flush counts/durations.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "trace/record.hpp"

namespace prism::trace {

/// What to do with a record that arrives when the buffer is full.
enum class OverflowPolicy : std::uint8_t {
  kDrop,       ///< discard the new record ("data collection stops") — PICL default
  kOverwrite,  ///< overwrite the oldest record (circular buffer)
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity,
                       OverflowPolicy policy = OverflowPolicy::kDrop)
      : capacity_(capacity), policy_(policy) {
    if (capacity == 0) throw std::invalid_argument("TraceBuffer: capacity 0");
    records_.reserve(capacity);
  }

  /// Appends a record.  Returns false when the record was dropped.
  bool append(const EventRecord& r) {
    ++offered_;
    if (records_.size() < capacity_) {
      records_.push_back(r);
      return true;
    }
    if (policy_ == OverflowPolicy::kDrop) {
      ++dropped_;
      return false;
    }
    // Circular overwrite.
    records_[write_cursor_] = r;
    write_cursor_ = (write_cursor_ + 1) % capacity_;
    ++overwritten_;
    return true;
  }

  bool full() const { return records_.size() >= capacity_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Records offered since construction (accepted + dropped).
  std::uint64_t offered() const { return offered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t overwritten() const { return overwritten_; }
  std::uint64_t flushes() const { return flushes_; }

  /// Read-only view of the buffered records (insertion order; for the
  /// overwrite policy the view is storage order, not age order).
  std::span<const EventRecord> contents() const { return records_; }

  /// Moves all buffered records out and resets the buffer (a flush).
  std::vector<EventRecord> drain() {
    std::vector<EventRecord> out;
    drain_into(out);
    return out;
  }

  /// As drain(), but swaps into caller-provided storage — pass a recycled
  /// vector (core::BatchArena) and the flush allocates only until the
  /// buffer's own backing store has warmed to `capacity`.
  void drain_into(std::vector<EventRecord>& out) {
    ++flushes_;
    out.clear();
    out.swap(records_);
    if (records_.capacity() < capacity_) records_.reserve(capacity_);
    write_cursor_ = 0;
  }

  /// Conservation invariant: offered == resident + drained + dropped
  /// (+ overwritten for circular buffers).
  bool conserved(std::uint64_t drained_total) const {
    return offered_ ==
           records_.size() + drained_total + dropped_ + overwritten_;
  }

 private:
  std::size_t capacity_;
  OverflowPolicy policy_;
  std::vector<EventRecord> records_;
  std::size_t write_cursor_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace prism::trace
