// Perturbation accounting and compensation.
//
// "Work has been done on compensating for the effects of program
// perturbation due to instrumentation ... Malony et al. describe a model for
// removing the effects of perturbation from the traces of parallel program
// executions" (§4, refs [16][31]).  This module implements the time-based
// part of that model:
//
//   * each instrumented event inflates its process's subsequent timestamps
//     by a fixed per-event overhead delta;
//   * buffer flushes inflate them by the flush duration (bracketed by
//     kFlushBegin / kFlushEnd records);
//   * compensation removes the accumulated local overhead, then restores
//     cross-process consistency: a receive cannot precede its matching send
//     plus the minimum message latency.
//
// The paper is careful to note that "quantitative calculation of program
// perturbation, which can change the actual order of events, is still a
// challenge" (§3.1.3) — event *reordering* is out of scope here too; the
// compensator restores timestamps, and reports how many receive constraints
// it had to re-enforce (a measure of how close the trace came to reordering).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace prism::trace {

struct PerturbationModel {
  /// Timestamp inflation per instrumented event (same unit as timestamps).
  std::uint64_t per_event_overhead = 0;
  /// Minimum end-to-end message latency enforced between matched
  /// send/recv pairs after compensation.
  std::uint64_t min_message_latency = 0;
  /// When true, time between kFlushBegin/kFlushEnd on a process is treated
  /// as pure overhead and removed.
  bool remove_flush_intervals = true;
};

struct CompensationReport {
  /// Records whose timestamps were reduced.
  std::uint64_t adjusted = 0;
  /// Receive events pushed later to respect their send (violations the
  /// local pass introduced — each was a potential event reordering).
  std::uint64_t recv_constraints_applied = 0;
  /// Total overhead time removed, summed over processes.
  std::uint64_t total_overhead_removed = 0;
  /// Iterations of the cross-process fix-point.
  unsigned iterations = 0;
};

/// Applies the model's overhead to a clean trace, producing the "perturbed"
/// trace an IS would actually record.  Inverse-direction helper used by
/// tests and by the perturbation ablation bench.
std::vector<EventRecord> apply_perturbation(
    const std::vector<EventRecord>& clean, const PerturbationModel& model);

/// Removes modeled instrumentation overhead from `perturbed` (record order
/// is preserved; only timestamps change).  The input must contain every
/// process's records in per-process seq order.
CompensationReport compensate(std::vector<EventRecord>& perturbed,
                              const PerturbationModel& model);

}  // namespace prism::trace
