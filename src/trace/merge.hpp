// K-way trace merging.
//
// The off-line ISM's job in the PICL case study: per-node buffers/files are
// "merged into a single trace file at the host system" (§3.1), with
// "event-ordering off-line" (§2.2.2).  merge_sorted() is a heap-based k-way
// merge over per-node streams that are individually time-ordered;
// merge_any() sorts unconditionally (for inputs perturbed out of order).
#pragma once

#include <span>
#include <vector>

#include "trace/record.hpp"

namespace prism::trace {

/// Merges per-source record sequences, each already sorted by RecordOrder,
/// into one globally sorted sequence.  O(N log k).
std::vector<EventRecord> merge_sorted(
    const std::vector<std::vector<EventRecord>>& streams);

/// Merges arbitrary record sequences by concatenation + stable sort.
/// O(N log N); use when inputs are not guaranteed sorted.
std::vector<EventRecord> merge_any(
    const std::vector<std::vector<EventRecord>>& streams);

/// True when `records` is sorted by RecordOrder.
bool is_time_ordered(std::span<const EventRecord> records);

}  // namespace prism::trace
