// Causal ordering of instrumentation data at the ISM.
//
// The Vista ISM releases events only in causal order: "If an arriving event
// is in correct causal order, it is assigned a logical time-stamp and stored
// in an output buffer.  If the arriving event is not in causal order, it is
// added in one (or multiple) input buffer(s) to reconstruct the causal order
// of the data before dispatch to a tool" (§3.3).
//
// CausalReorderer enforces two constraints on the release order:
//   (1) program order: events of a (node, process) stream are released in
//       increasing per-stream sequence number;
//   (2) message order: a kRecv event is released only after its matching
//       kSend (the n-th recv at B from A with tag t matches the n-th send
//       from A to B with tag t).
// Released events receive monotonically increasing Lamport stamps.
// Held-back events wait in per-stream input buffers, whose occupancy is the
// paper's "average buffer length" / Falcon's "hold back ratio" metric.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "trace/record.hpp"

namespace prism::trace {

class CausalReorderer {
 public:
  /// `release` consumes events as they become causally deliverable.
  explicit CausalReorderer(std::function<void(const EventRecord&)> release);

  /// Offers one event.  May trigger zero or more releases (the offered
  /// event and any previously-held events it unblocks).
  void offer(EventRecord r);

  /// Declares `node` dead (its remaining records will never arrive) and
  /// force-releases what its death stranded: the node's own held streams are
  /// released in seq order tolerating gaps, and receives at live nodes that
  /// were waiting on the dead node's unreleased sends become deliverable.
  /// Returns the number of records released.  Degraded-mode operation: the
  /// released order may violate message order across the dead node's
  /// channels — by construction, since the matching sends are lost.
  /// Idempotent: expiring an already-dead node (or one with no pending
  /// records) releases nothing and returns 0.
  std::size_t expire_node(std::uint32_t node);

  /// Expires a whole group of nodes at once — the federation's unit of
  /// death is an aggregator shard, not a single node.  All nodes enter the
  /// dead set *before* any force-release, so holds between two dying nodes
  /// (a recv at one waiting on a send from the other) resolve in the same
  /// pass instead of stranding, and the ready fixed point runs once for the
  /// group.  Returns the total number of records released.
  std::size_t expire_nodes(const std::vector<std::uint32_t>& nodes);

  /// Restricts message-order enforcement to `local_nodes`: a recv whose
  /// peer is outside the scope is released without waiting for the matching
  /// send.  This is how a per-shard aggregator pre-reduces — it can order
  /// its own cluster's traffic, but a cross-shard send is processed by a
  /// different aggregator and will never flow through this one; holding the
  /// recv would strand it forever.  The root-level reorderer (unscoped)
  /// still enforces the waived pairs globally.  Program order is always
  /// enforced regardless of scope.  Call before the first offer().
  void restrict_scope(const std::vector<std::uint32_t>& local_nodes);

  const std::set<std::uint32_t>& dead_nodes() const { return dead_nodes_; }

  /// Number of events currently held back.
  std::size_t held() const;
  /// Snapshot of every held-back event, in stream-key then seq order (the
  /// ISM's shutdown residue: causally unresolvable records it attributes as
  /// queue losses).
  std::vector<EventRecord> held_records() const {
    std::vector<EventRecord> out;
    out.reserve(held_count_);
    for (const auto& [stream, q] : held_)
      out.insert(out.end(), q.begin(), q.end());
    return out;
  }
  /// Events held back at least once (for the hold-back ratio).
  std::uint64_t held_back_total() const { return held_back_total_; }
  std::uint64_t offered_total() const { return offered_total_; }
  std::uint64_t released_total() const { return released_total_; }
  /// Falcon's hold-back ratio: held-back arrivals / total arrivals (§3.3.2).
  double hold_back_ratio() const {
    return offered_total_ == 0
               ? 0.0
               : static_cast<double>(held_back_total_) /
                     static_cast<double>(offered_total_);
  }

 private:
  using StreamKey = std::uint64_t;  // node << 32 | process
  using ChannelKey = std::uint64_t; // from << 40 | to << 16 | tag

  static StreamKey stream_of(const EventRecord& r) {
    return (static_cast<std::uint64_t>(r.node) << 32) | r.process;
  }
  static ChannelKey channel(std::uint32_t from, std::uint32_t to,
                            std::uint16_t tag) {
    return (static_cast<std::uint64_t>(from) << 40) |
           (static_cast<std::uint64_t>(to) << 16) | tag;
  }

  bool deliverable(const EventRecord& r) const;
  void release_now(const EventRecord& r);
  void drain_ready();

  std::function<void(const EventRecord&)> release_;
  /// Next expected per-stream sequence number.
  std::map<StreamKey, std::uint64_t> next_seq_;
  /// Released send count and released recv count per channel.
  std::map<ChannelKey, std::uint64_t> sends_released_;
  std::map<ChannelKey, std::uint64_t> recvs_released_;
  /// Held-back events per stream, kept sorted by seq.
  std::map<StreamKey, std::deque<EventRecord>> held_;
  /// Nodes whose missing records are known lost (see expire_node): message
  /// order is waived for receives naming them as peer.
  std::set<std::uint32_t> dead_nodes_;
  /// When scoped_ (see restrict_scope), message order is enforced only for
  /// peers inside local_scope_ — everything else is another shard's traffic.
  bool scoped_ = false;
  std::set<std::uint32_t> local_scope_;
  std::size_t held_count_ = 0;
  std::uint64_t lamport_ = 0;
  std::uint64_t offered_total_ = 0;
  std::uint64_t held_back_total_ = 0;
  std::uint64_t released_total_ = 0;
};

/// Verifies that `records` (in release order) satisfies program order and
/// message order as defined above.  Returns the index of the first violation
/// or -1 when consistent.
long long first_causal_violation(const std::vector<EventRecord>& records);

}  // namespace prism::trace
