#include "trace/merge.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace prism::trace {

namespace {

struct HeapItem {
  const EventRecord* rec;
  std::size_t stream;
  std::size_t index;
};

struct HeapLater {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    RecordOrder lt;
    if (lt(*b.rec, *a.rec)) return true;
    if (lt(*a.rec, *b.rec)) return false;
    return a.stream > b.stream;  // deterministic tie-break by stream id
  }
};

}  // namespace

std::vector<EventRecord> merge_sorted(
    const std::vector<std::vector<EventRecord>>& streams) {
  RecordOrder lt;
  std::size_t total = 0;
  for (const auto& s : streams) {
    total += s.size();
    for (std::size_t i = 1; i < s.size(); ++i)
      if (lt(s[i], s[i - 1]))
        throw std::invalid_argument("merge_sorted: input stream not sorted");
  }
  std::vector<EventRecord> out;
  out.reserve(total);
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapLater> heap;
  for (std::size_t s = 0; s < streams.size(); ++s)
    if (!streams[s].empty()) heap.push(HeapItem{&streams[s][0], s, 0});
  while (!heap.empty()) {
    HeapItem it = heap.top();
    heap.pop();
    out.push_back(*it.rec);
    const auto& src = streams[it.stream];
    if (it.index + 1 < src.size())
      heap.push(HeapItem{&src[it.index + 1], it.stream, it.index + 1});
  }
  return out;
}

std::vector<EventRecord> merge_any(
    const std::vector<std::vector<EventRecord>>& streams) {
  std::vector<EventRecord> out;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.reserve(total);
  for (const auto& s : streams) out.insert(out.end(), s.begin(), s.end());
  std::stable_sort(out.begin(), out.end(), RecordOrder{});
  return out;
}

bool is_time_ordered(std::span<const EventRecord> records) {
  RecordOrder lt;
  for (std::size_t i = 1; i < records.size(); ++i)
    if (lt(records[i], records[i - 1])) return false;
  return true;
}

}  // namespace prism::trace
