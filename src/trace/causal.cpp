#include "trace/causal.hpp"

#include <algorithm>
#include <stdexcept>

namespace prism::trace {

CausalReorderer::CausalReorderer(
    std::function<void(const EventRecord&)> release)
    : release_(std::move(release)) {
  if (!release_) throw std::invalid_argument("CausalReorderer: null release");
}

bool CausalReorderer::deliverable(const EventRecord& r) const {
  const auto key = stream_of(r);
  auto it = next_seq_.find(key);
  const std::uint64_t expected = it == next_seq_.end() ? 0 : it->second;
  if (r.seq != expected) return false;
  if (r.kind == EventKind::kRecv) {
    // Out-of-scope peer: the matching send flows through another shard's
    // aggregator and will never be offered here; message order for this
    // channel is the unscoped (root) reorderer's job.
    if (scoped_ && local_scope_.count(r.peer) == 0) return true;
    const auto ch = channel(r.peer, r.node, r.tag);
    auto sit = sends_released_.find(ch);
    const std::uint64_t sends = sit == sends_released_.end() ? 0 : sit->second;
    auto rit = recvs_released_.find(ch);
    const std::uint64_t recvs = rit == recvs_released_.end() ? 0 : rit->second;
    // Matching send not yet released: hold — unless the sender is dead, in
    // which case that send is known lost and waiting would strand the recv.
    if (recvs >= sends && dead_nodes_.count(r.peer) == 0) return false;
  }
  return true;
}

void CausalReorderer::restrict_scope(
    const std::vector<std::uint32_t>& local_nodes) {
  scoped_ = true;
  local_scope_.clear();
  local_scope_.insert(local_nodes.begin(), local_nodes.end());
}

void CausalReorderer::release_now(const EventRecord& r) {
  EventRecord out = r;
  out.lamport = ++lamport_;
  next_seq_[stream_of(r)] = r.seq + 1;
  if (r.kind == EventKind::kSend)
    ++sends_released_[channel(r.node, r.peer, r.tag)];
  else if (r.kind == EventKind::kRecv)
    ++recvs_released_[channel(r.peer, r.node, r.tag)];
  ++released_total_;
  release_(out);
}

void CausalReorderer::offer(EventRecord r) {
  ++offered_total_;
  if (!deliverable(r)) {
    ++held_back_total_;
    auto& dq = held_[stream_of(r)];
    // Insert keeping the per-stream deque sorted by seq.
    auto pos = std::lower_bound(
        dq.begin(), dq.end(), r,
        [](const EventRecord& a, const EventRecord& b) { return a.seq < b.seq; });
    dq.insert(pos, r);
    ++held_count_;
    return;
  }
  release_now(r);
  drain_ready();
}

void CausalReorderer::drain_ready() {
  // Fixed-point: releasing one event may unblock the head of any stream
  // (program order) or a held recv (message order).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [key, dq] : held_) {
      while (!dq.empty() && deliverable(dq.front())) {
        EventRecord r = dq.front();
        dq.pop_front();
        --held_count_;
        release_now(r);
        progressed = true;
      }
    }
  }
}

std::size_t CausalReorderer::expire_node(std::uint32_t node) {
  return expire_nodes({node});
}

std::size_t CausalReorderer::expire_nodes(
    const std::vector<std::uint32_t>& nodes) {
  const std::uint64_t before = released_total_;
  // The whole group enters the dead set before any release: a recv held at
  // one dying node waiting on another dying node's lost send must see the
  // peer's message-order waiver during its own force-release.
  for (auto n : nodes) dead_nodes_.insert(n);
  // Force-release each dead node's own held streams in seq order, tolerating
  // gaps: the missing records died with the node and will never arrive
  // (release_now advances next_seq past each gap).
  for (auto node : nodes) {
    for (auto& [key, dq] : held_) {
      if (static_cast<std::uint32_t>(key >> 32) != node) continue;
      while (!dq.empty()) {
        EventRecord r = dq.front();
        dq.pop_front();
        --held_count_;
        release_now(r);
      }
    }
  }
  // Receives at live nodes waiting on the dead nodes' sends drain via the
  // usual fixed point now that deliverable() waives their message order.
  drain_ready();
  return static_cast<std::size_t>(released_total_ - before);
}

std::size_t CausalReorderer::held() const { return held_count_; }

long long first_causal_violation(const std::vector<EventRecord>& records) {
  std::map<std::uint64_t, std::uint64_t> next_seq;
  std::map<std::uint64_t, std::uint64_t> sends, recvs;
  auto stream_of = [](const EventRecord& r) {
    return (static_cast<std::uint64_t>(r.node) << 32) | r.process;
  };
  auto channel = [](std::uint32_t from, std::uint32_t to, std::uint16_t tag) {
    return (static_cast<std::uint64_t>(from) << 40) |
           (static_cast<std::uint64_t>(to) << 16) | tag;
  };
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    auto& expected = next_seq[stream_of(r)];
    if (r.seq != expected) return static_cast<long long>(i);
    ++expected;
    if (r.kind == EventKind::kSend) {
      ++sends[channel(r.node, r.peer, r.tag)];
    } else if (r.kind == EventKind::kRecv) {
      const auto ch = channel(r.peer, r.node, r.tag);
      if (recvs[ch] >= sends[ch]) return static_cast<long long>(i);
      ++recvs[ch];
    }
  }
  return -1;
}

}  // namespace prism::trace
