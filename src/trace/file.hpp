// Binary trace files with a small self-describing header, plus a CSV dump
// for human consumption.  The off-line ISM "simply stores the data for
// post-processing" (§2.4); these files are that storage tier, and the final
// merge target ("merged into a single trace file at the host system", §3.1).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace prism::trace {

/// Magic + version at the head of every trace file.
struct TraceFileHeader {
  static constexpr std::uint64_t kMagic = 0x50524953'54524331ull;  // "PRISTRC1"
  std::uint64_t magic = kMagic;
  std::uint32_t version = 1;
  std::uint32_t record_size = sizeof(EventRecord);
  std::uint64_t record_count = 0;  ///< patched on close
};

/// Streaming writer.  Not thread-safe; one writer per file.
class TraceFileWriter {
 public:
  explicit TraceFileWriter(const std::filesystem::path& path);
  ~TraceFileWriter();
  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void write(const EventRecord& r);
  void write(const std::vector<EventRecord>& batch);
  std::uint64_t records_written() const { return count_; }
  /// Flushes and patches the header; called by the destructor if needed.
  void close();

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// Whole-file reader (traces in this suite comfortably fit in memory).
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::filesystem::path& path);

  const std::vector<EventRecord>& records() const { return records_; }
  std::uint64_t record_count() const { return records_.size(); }

 private:
  std::vector<EventRecord> records_;
};

/// Writes a human-readable CSV rendering of `records` to `path`.
void write_csv(const std::filesystem::path& path,
               const std::vector<EventRecord>& records);

}  // namespace prism::trace
