#include "trace/perturbation.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace prism::trace {

namespace {

using StreamKey = std::uint64_t;
using ChannelKey = std::uint64_t;

StreamKey stream_of(const EventRecord& r) {
  return (static_cast<std::uint64_t>(r.node) << 32) | r.process;
}
ChannelKey channel(std::uint32_t from, std::uint32_t to, std::uint16_t tag) {
  return (static_cast<std::uint64_t>(from) << 40) |
         (static_cast<std::uint64_t>(to) << 16) | tag;
}

/// Indices of each stream's records, in per-stream seq order.
std::map<StreamKey, std::vector<std::size_t>> index_streams(
    const std::vector<EventRecord>& recs) {
  std::map<StreamKey, std::vector<std::size_t>> streams;
  for (std::size_t i = 0; i < recs.size(); ++i)
    streams[stream_of(recs[i])].push_back(i);
  for (auto& [k, idx] : streams)
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return recs[a].seq < recs[b].seq;
    });
  return streams;
}

/// recv index -> matched send index (n-th recv on a channel matches the
/// n-th send, ordinals in per-stream seq order which is the program order).
std::map<std::size_t, std::size_t> match_messages(
    const std::vector<EventRecord>& recs,
    const std::map<StreamKey, std::vector<std::size_t>>& streams) {
  std::map<ChannelKey, std::vector<std::size_t>> sends, recvs;
  for (auto& [k, idx] : streams) {
    for (std::size_t i : idx) {
      const auto& r = recs[i];
      if (r.kind == EventKind::kSend)
        sends[channel(r.node, r.peer, r.tag)].push_back(i);
      else if (r.kind == EventKind::kRecv)
        recvs[channel(r.peer, r.node, r.tag)].push_back(i);
    }
  }
  std::map<std::size_t, std::size_t> match;
  for (auto& [ch, ss] : sends) {
    auto it = recvs.find(ch);
    if (it == recvs.end()) continue;
    const std::size_t n = std::min(ss.size(), it->second.size());
    for (std::size_t i = 0; i < n; ++i) match[it->second[i]] = ss[i];
  }
  return match;
}

/// Runs `visit(record_index)` over all records in a dependency-respecting
/// order: per-stream seq order, and each matched recv after its send.
/// Returns the number of sweep passes used.
template <typename Visit>
unsigned topological_sweep(
    const std::vector<EventRecord>& recs,
    const std::map<StreamKey, std::vector<std::size_t>>& streams,
    const std::map<std::size_t, std::size_t>& recv_to_send, Visit visit) {
  std::vector<bool> done(recs.size(), false);
  std::map<StreamKey, std::size_t> cursor;
  std::size_t remaining = recs.size();
  unsigned passes = 0;
  while (remaining > 0) {
    ++passes;
    bool progressed = false;
    for (auto& [key, idx] : streams) {
      auto& cur = cursor[key];
      while (cur < idx.size()) {
        const std::size_t i = idx[cur];
        auto dep = recv_to_send.find(i);
        if (dep != recv_to_send.end() && !done[dep->second]) break;
        visit(i);
        done[i] = true;
        ++cur;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) {
      // Corrupt pairing (cycle): process the remainder ignoring message
      // dependencies rather than looping forever.
      for (auto& [key, idx] : streams) {
        auto& cur = cursor[key];
        while (cur < idx.size()) {
          visit(idx[cur]);
          done[idx[cur]] = true;
          ++cur;
          --remaining;
        }
      }
    }
  }
  return passes;
}

}  // namespace

std::vector<EventRecord> apply_perturbation(
    const std::vector<EventRecord>& clean, const PerturbationModel& model) {
  std::vector<EventRecord> out = clean;
  const auto streams = index_streams(out);
  const auto recv_to_send = match_messages(out, streams);

  // Execution replay: each event is delayed by the accumulated overhead of
  // the preceding instrumented events on its process (inter-event gaps are
  // preserved), and a receive additionally waits for its (delayed) message.
  std::map<StreamKey, std::size_t> prev_index;  // last replayed per stream
  topological_sweep(out, streams, recv_to_send, [&](std::size_t i) {
    EventRecord& r = out[i];
    const auto key = stream_of(r);
    auto prev = prev_index.find(key);
    std::uint64_t t;
    if (prev == prev_index.end()) {
      t = clean[i].timestamp;
    } else {
      const std::uint64_t gap =
          clean[i].timestamp - clean[prev->second].timestamp;
      t = out[prev->second].timestamp + gap + model.per_event_overhead;
    }
    auto dep = recv_to_send.find(i);
    if (dep != recv_to_send.end()) {
      t = std::max(t,
                   out[dep->second].timestamp + model.min_message_latency);
    }
    r.timestamp = t;
    prev_index[key] = i;
  });
  return out;
}

CompensationReport compensate(std::vector<EventRecord>& perturbed,
                              const PerturbationModel& model) {
  CompensationReport rep;
  const auto streams = index_streams(perturbed);
  const auto recv_to_send = match_messages(perturbed, streams);

  std::vector<std::uint64_t> true_ts(perturbed.size(), 0);
  std::map<StreamKey, std::size_t> prev_index;
  std::map<StreamKey, std::uint64_t> flush_begin_true;
  std::map<StreamKey, bool> in_flush;

  rep.iterations =
      topological_sweep(perturbed, streams, recv_to_send, [&](std::size_t i) {
        EventRecord& r = perturbed[i];
        const auto key = stream_of(r);
        auto prev = prev_index.find(key);

        // Gap-preserving local estimate: true gap = perturbed gap minus the
        // per-event overhead (clamped at zero).
        std::uint64_t t;
        if (prev == prev_index.end()) {
          t = r.timestamp;
        } else {
          const std::uint64_t pgap =
              r.timestamp - perturbed[prev->second].timestamp;
          const std::uint64_t gap =
              pgap > model.per_event_overhead
                  ? pgap - model.per_event_overhead
                  : 0;
          t = true_ts[prev->second] + gap;
        }

        // Flush intervals are pure overhead: the end collapses onto the
        // begin's true time, removing the interval from all later gaps.
        if (model.remove_flush_intervals) {
          if (r.kind == EventKind::kFlushBegin) {
            in_flush[key] = true;
            flush_begin_true[key] = t;
          } else if (r.kind == EventKind::kFlushEnd && in_flush[key]) {
            in_flush[key] = false;
            t = flush_begin_true[key];
          }
        }

        // Message constraint: a recv happens no earlier than its send's
        // true time plus the minimum latency.  A message-limited recv (one
        // that fired as soon as the delayed message arrived) is pinned to
        // exactly that arrival.
        auto dep = recv_to_send.find(i);
        if (dep != recv_to_send.end()) {
          const std::size_t s = dep->second;
          const std::uint64_t arrival =
              true_ts[s] + model.min_message_latency;
          const bool message_limited =
              r.timestamp <=
              perturbed[s].timestamp + model.min_message_latency;
          const std::uint64_t prev_true =
              prev == prev_index.end() ? 0 : true_ts[prev->second];
          if (message_limited) {
            t = std::max(prev_true, arrival);
            ++rep.recv_constraints_applied;
          } else if (t < arrival) {
            t = std::max(prev_true, arrival);
            ++rep.recv_constraints_applied;
          }
        }

        true_ts[i] = t;
        prev_index[key] = i;
      });

  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    if (true_ts[i] != perturbed[i].timestamp) {
      ++rep.adjusted;
      if (perturbed[i].timestamp > true_ts[i])
        rep.total_overhead_removed += perturbed[i].timestamp - true_ts[i];
    }
    perturbed[i].timestamp = true_ts[i];
  }
  return rep;
}

}  // namespace prism::trace
