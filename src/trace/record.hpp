// The instrumentation-data record.
//
// "We use the term instrumentation data to account for both execution
// information (messages, memory references, I/O calls, etc.) and program
// information (variables, arrays, objects, etc.)" (§2.2).  EventRecord is a
// compact, trivially-copyable 32-byte POD so local buffers are dense arrays
// (cache-friendly, flushable with a single write) and the hot logging path
// never allocates.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

namespace prism::trace {

/// Kinds of instrumentation events.  The numeric values are part of the
/// on-disk trace format; append only.
enum class EventKind : std::uint16_t {
  kUserEvent = 0,     ///< user-defined marker (PICL tracedata-style)
  kSend = 1,          ///< message send (payload = bytes, tag = msg tag)
  kRecv = 2,          ///< message receive
  kBlockBegin = 3,    ///< entry into an instrumented block/function
  kBlockEnd = 4,      ///< exit from an instrumented block/function
  kSample = 5,        ///< sampled metric value (Paradyn-style)
  kFlushBegin = 6,    ///< IS self-event: local buffer flush started
  kFlushEnd = 7,      ///< IS self-event: local buffer flush finished
  kIo = 8,            ///< I/O call
  kMemRef = 9,        ///< memory reference (modeling only)
  kControl = 10,      ///< IS control message
  kBarrier = 11,      ///< synchronization barrier
  kTraceStart = 12,   ///< per-process trace start marker
  kTraceStop = 13,    ///< per-process trace stop marker
};

std::string_view to_string(EventKind k);

/// One instrumentation event.  `timestamp` is in nanoseconds for live
/// traces and model time units for simulated traces.  `lamport` carries the
/// logical time-stamp assigned by the ISM ("we use the technique of
/// assigning logical time-stamps", §3.3).
struct EventRecord {
  std::uint64_t timestamp = 0;  ///< physical (local-clock) time
  std::uint32_t node = 0;       ///< node of the concurrent system
  std::uint32_t process = 0;    ///< process (or thread) on that node
  EventKind kind = EventKind::kUserEvent;
  std::uint16_t tag = 0;        ///< event-kind-specific tag (msg tag, metric id)
  std::uint32_t peer = 0;       ///< peer node for send/recv, else 0
  std::uint64_t payload = 0;    ///< bytes, metric value bits, block id, ...
  std::uint64_t lamport = 0;    ///< logical timestamp (assigned by ISM)
  std::uint64_t seq = 0;        ///< per-(node,process) sequence number
};

static_assert(std::is_trivially_copyable_v<EventRecord>,
              "EventRecord must stay a flushable POD");
static_assert(sizeof(EventRecord) == 48, "on-disk format size");

/// Total order used by trace files and merging: (timestamp, node, process,
/// seq).  Deterministic tie-break keeps merges stable.
struct RecordOrder {
  bool operator()(const EventRecord& a, const EventRecord& b) const {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    if (a.node != b.node) return a.node < b.node;
    if (a.process != b.process) return a.process < b.process;
    return a.seq < b.seq;
  }
};

/// Packs/unpacks a double metric value into the payload field losslessly.
std::uint64_t pack_double(double v);
double unpack_double(std::uint64_t bits);

}  // namespace prism::trace
