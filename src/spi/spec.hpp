// SPI-style event specification language (§4, ref [1]: "SPI supports an
// application-specific instrumentation development environment, which is
// based on an event-action model and an event specification language").
//
// A specification is a list of rules:
//
//   rule big_sends:   when kind = send && payload > 1024        do count
//   rule hot_metric:  when kind = sample && tag = 5 && value > 0.9 do trigger
//   rule node3_waits: when kind = recv && node = 3               do mark slow
//   rule anything:    when !(kind = send || kind = recv)         do count
//
// Grammar (comments start with '#'):
//   spec    := { rule }
//   rule    := "rule" IDENT ":" "when" expr "do" action
//   expr    := or
//   or      := and { "||" and }
//   and     := unary { "&&" unary }
//   unary   := "!" unary | "(" expr ")" | cmp
//   cmp     := field op literal
//   field   := kind | node | process | tag | peer | payload | seq |
//              timestamp | lamport | value          (value: sample payload)
//   op      := "=" | "!=" | "<" | "<=" | ">" | ">="
//   literal := NUMBER | FLOAT | event-kind name (send, recv, sample, ...)
//   action  := "count" | "trigger" | "mark" IDENT
//
// parse_spec() produces compiled Rule objects (predicates are closed-over
// lambdas — no interpretation overhead per event beyond the comparisons).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace prism::spi {

/// Compiled predicate over one event.
using Predicate = std::function<bool(const trace::EventRecord&)>;

enum class ActionKind : std::uint8_t {
  kCount,    ///< increment the rule's counter
  kTrigger,  ///< invoke the machine's trigger callback
  kMark,     ///< capture the record under a label
};

struct Rule {
  std::string name;
  Predicate when;
  ActionKind action = ActionKind::kCount;
  std::string mark_label;  ///< for kMark
};

/// Error with line information.
class SpecError : public std::runtime_error {
 public:
  SpecError(std::size_t line, const std::string& message)
      : std::runtime_error("spec:" + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses an event-action specification.  Throws SpecError on bad input.
std::vector<Rule> parse_spec(const std::string& text);

// --- Programmatic predicate combinators (for building rules in C++) -------

Predicate match_kind(trace::EventKind k);
Predicate match_node(std::uint32_t node);
Predicate match_tag(std::uint16_t tag);
Predicate payload_above(std::uint64_t threshold);
Predicate sample_value_above(double threshold);
Predicate p_and(Predicate a, Predicate b);
Predicate p_or(Predicate a, Predicate b);
Predicate p_not(Predicate a);

}  // namespace prism::spi
