// The SPI-style Event-Action machine (Table 8: SPI's ISM is "Event-Action
// machines").  It is a core::Tool, so it attaches to any ISM and evaluates
// its rules over the ordered record stream: counting matches, firing
// triggers (the steering hook), and capturing marked records.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/tool.hpp"
#include "spi/spec.hpp"

namespace prism::spi {

class EventActionMachine final : public core::Tool {
 public:
  /// Fired for every matched kTrigger rule: (rule name, record).
  using TriggerFn =
      std::function<void(const std::string&, const trace::EventRecord&)>;

  explicit EventActionMachine(std::vector<Rule> rules,
                              TriggerFn on_trigger = nullptr,
                              std::size_t max_marked = 4096);

  /// Builds the machine from specification text (see spec.hpp grammar).
  static EventActionMachine from_spec(const std::string& text,
                                      TriggerFn on_trigger = nullptr,
                                      std::size_t max_marked = 4096);

  std::string_view name() const override { return "event_action_machine"; }
  void consume(const trace::EventRecord& r) override;

  /// Events seen / matched (any rule).
  std::uint64_t events_seen() const { return seen_.load(); }
  /// Per-rule match counter.
  std::uint64_t count(const std::string& rule) const;
  /// Trigger firings per rule.
  std::uint64_t triggers(const std::string& rule) const;
  /// Records captured under a mark label.
  std::vector<trace::EventRecord> marked(const std::string& label) const;
  const std::vector<Rule>& rules() const { return rules_; }

  /// Renders the per-rule counters.
  std::string report() const;

 private:
  std::vector<Rule> rules_;
  TriggerFn on_trigger_;
  std::size_t max_marked_;
  std::atomic<std::uint64_t> seen_{0};
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;
  std::map<std::string, std::uint64_t> trigger_counts_;
  std::map<std::string, std::vector<trace::EventRecord>> marked_;
};

}  // namespace prism::spi
