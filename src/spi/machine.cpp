#include "spi/machine.hpp"

#include <sstream>
#include <stdexcept>

namespace prism::spi {

EventActionMachine::EventActionMachine(std::vector<Rule> rules,
                                       TriggerFn on_trigger,
                                       std::size_t max_marked)
    : rules_(std::move(rules)),
      on_trigger_(std::move(on_trigger)),
      max_marked_(max_marked) {
  for (const auto& rule : rules_) {
    if (!rule.when)
      throw std::invalid_argument("EventActionMachine: rule '" + rule.name +
                                  "' has no predicate");
    if (rule.action == ActionKind::kMark && rule.mark_label.empty())
      throw std::invalid_argument("EventActionMachine: rule '" + rule.name +
                                  "' marks without a label");
  }
}

EventActionMachine EventActionMachine::from_spec(const std::string& text,
                                                 TriggerFn on_trigger,
                                                 std::size_t max_marked) {
  return EventActionMachine(parse_spec(text), std::move(on_trigger),
                            max_marked);
}

void EventActionMachine::consume(const trace::EventRecord& r) {
  seen_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& rule : rules_) {
    if (!rule.when(r)) continue;
    {
      std::lock_guard lk(mu_);
      ++counts_[rule.name];
      if (rule.action == ActionKind::kMark) {
        auto& v = marked_[rule.mark_label];
        if (v.size() < max_marked_) v.push_back(r);
      } else if (rule.action == ActionKind::kTrigger) {
        ++trigger_counts_[rule.name];
      }
    }
    if (rule.action == ActionKind::kTrigger && on_trigger_)
      on_trigger_(rule.name, r);
  }
}

std::uint64_t EventActionMachine::count(const std::string& rule) const {
  std::lock_guard lk(mu_);
  auto it = counts_.find(rule);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t EventActionMachine::triggers(const std::string& rule) const {
  std::lock_guard lk(mu_);
  auto it = trigger_counts_.find(rule);
  return it == trigger_counts_.end() ? 0 : it->second;
}

std::vector<trace::EventRecord> EventActionMachine::marked(
    const std::string& label) const {
  std::lock_guard lk(mu_);
  auto it = marked_.find(label);
  return it == marked_.end() ? std::vector<trace::EventRecord>{} : it->second;
}

std::string EventActionMachine::report() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << "event-action machine: " << seen_.load() << " events\n";
  for (const auto& rule : rules_) {
    auto it = counts_.find(rule.name);
    os << "  rule " << rule.name << ": "
       << (it == counts_.end() ? 0 : it->second) << " matches";
    if (rule.action == ActionKind::kMark) os << " (mark " << rule.mark_label << ")";
    if (rule.action == ActionKind::kTrigger) {
      auto t = trigger_counts_.find(rule.name);
      os << " (" << (t == trigger_counts_.end() ? 0 : t->second)
         << " triggers)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace prism::spi
