#include "spi/spec.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>

namespace prism::spi {

namespace {

// ------------------------------------------------------------------ lexer

enum class Tok : std::uint8_t {
  kIdent,   // rule names, field names, kind names, keywords
  kNumber,  // integer or float literal
  kColon,
  kLParen,
  kRParen,
  kAndAnd,
  kOrOr,
  kBang,
  kOp,      // = != < <= > >=
  kEnd,
};

struct Token {
  Tok type = Tok::kEnd;
  std::string text;
  double number = 0;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : s_(text) { advance(); }

  const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space_and_comments();
    cur_.line = line_;
    if (i_ >= s_.size()) {
      cur_ = Token{Tok::kEnd, "", 0, line_};
      return;
    }
    const char c = s_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i_;
      while (j < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[j])) || s_[j] == '_'))
        ++j;
      cur_ = Token{Tok::kIdent, s_.substr(i_, j - i_), 0, line_};
      i_ = j;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[i_ + 1])))) {
      std::size_t j = i_;
      while (j < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[j])) || s_[j] == '.' ||
              s_[j] == 'e' || s_[j] == 'E' ||
              ((s_[j] == '+' || s_[j] == '-') && j > i_ &&
               (s_[j - 1] == 'e' || s_[j - 1] == 'E'))))
        ++j;
      const std::string lit = s_.substr(i_, j - i_);
      // from_chars, not stod: stod honors the global C locale and throws an
      // uncaught std::out_of_range on overflow ("1e999") — both must be
      // ordinary SpecErrors carrying the line number.
      double value = 0.0;
      const auto [p, ec] =
          std::from_chars(lit.data(), lit.data() + lit.size(), value);
      if (ec == std::errc::result_out_of_range)
        throw SpecError(line_, "number literal out of range: '" + lit + "'");
      if (ec != std::errc{} || p != lit.data() + lit.size())
        throw SpecError(line_, "malformed number literal: '" + lit + "'");
      cur_ = Token{Tok::kNumber, lit, value, line_};
      i_ = j;
      return;
    }
    auto two = [&](char a, char b) {
      return c == a && i_ + 1 < s_.size() && s_[i_ + 1] == b;
    };
    if (two('&', '&')) { cur_ = {Tok::kAndAnd, "&&", 0, line_}; i_ += 2; return; }
    if (two('|', '|')) { cur_ = {Tok::kOrOr, "||", 0, line_}; i_ += 2; return; }
    if (two('!', '=')) { cur_ = {Tok::kOp, "!=", 0, line_}; i_ += 2; return; }
    if (two('<', '=')) { cur_ = {Tok::kOp, "<=", 0, line_}; i_ += 2; return; }
    if (two('>', '=')) { cur_ = {Tok::kOp, ">=", 0, line_}; i_ += 2; return; }
    switch (c) {
      case ':': cur_ = {Tok::kColon, ":", 0, line_}; ++i_; return;
      case '(': cur_ = {Tok::kLParen, "(", 0, line_}; ++i_; return;
      case ')': cur_ = {Tok::kRParen, ")", 0, line_}; ++i_; return;
      case '!': cur_ = {Tok::kBang, "!", 0, line_}; ++i_; return;
      case '=': cur_ = {Tok::kOp, "=", 0, line_}; ++i_; return;
      case '<': cur_ = {Tok::kOp, "<", 0, line_}; ++i_; return;
      case '>': cur_ = {Tok::kOp, ">", 0, line_}; ++i_; return;
      default:
        throw SpecError(line_, std::string("unexpected character '") + c + "'");
    }
  }

  void skip_space_and_comments() {
    for (;;) {
      while (i_ < s_.size() &&
             std::isspace(static_cast<unsigned char>(s_[i_]))) {
        if (s_[i_] == '\n') ++line_;
        ++i_;
      }
      if (i_ < s_.size() && s_[i_] == '#') {
        while (i_ < s_.size() && s_[i_] != '\n') ++i_;
        continue;
      }
      return;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  Token cur_;
};

// ------------------------------------------------------------------ parser

const std::map<std::string, trace::EventKind>& kind_names() {
  static const std::map<std::string, trace::EventKind> names{
      {"user", trace::EventKind::kUserEvent},
      {"send", trace::EventKind::kSend},
      {"recv", trace::EventKind::kRecv},
      {"block_begin", trace::EventKind::kBlockBegin},
      {"block_end", trace::EventKind::kBlockEnd},
      {"sample", trace::EventKind::kSample},
      {"flush_begin", trace::EventKind::kFlushBegin},
      {"flush_end", trace::EventKind::kFlushEnd},
      {"io", trace::EventKind::kIo},
      {"memref", trace::EventKind::kMemRef},
      {"control", trace::EventKind::kControl},
      {"barrier", trace::EventKind::kBarrier},
      {"trace_start", trace::EventKind::kTraceStart},
      {"trace_stop", trace::EventKind::kTraceStop},
  };
  return names;
}

enum class Field : std::uint8_t {
  kKind, kNode, kProcess, kTag, kPeer, kPayload, kSeq, kTimestamp, kLamport,
  kValue,
};

std::optional<Field> field_by_name(const std::string& n) {
  static const std::map<std::string, Field> fields{
      {"kind", Field::kKind},        {"node", Field::kNode},
      {"process", Field::kProcess},  {"tag", Field::kTag},
      {"peer", Field::kPeer},        {"payload", Field::kPayload},
      {"seq", Field::kSeq},          {"timestamp", Field::kTimestamp},
      {"lamport", Field::kLamport},  {"value", Field::kValue},
  };
  auto it = fields.find(n);
  if (it == fields.end()) return std::nullopt;
  return it->second;
}

double field_value(Field f, const trace::EventRecord& r) {
  switch (f) {
    case Field::kKind: return static_cast<double>(r.kind);
    case Field::kNode: return r.node;
    case Field::kProcess: return r.process;
    case Field::kTag: return r.tag;
    case Field::kPeer: return r.peer;
    case Field::kPayload: return static_cast<double>(r.payload);
    case Field::kSeq: return static_cast<double>(r.seq);
    case Field::kTimestamp: return static_cast<double>(r.timestamp);
    case Field::kLamport: return static_cast<double>(r.lamport);
    case Field::kValue: return trace::unpack_double(r.payload);
  }
  return 0;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  std::vector<Rule> parse() {
    std::vector<Rule> rules;
    while (lex_.peek().type != Tok::kEnd) {
      rules.push_back(parse_rule());
    }
    return rules;
  }

 private:
  Token expect(Tok type, const char* what) {
    Token t = lex_.take();
    if (t.type != type)
      throw SpecError(t.line, std::string("expected ") + what + ", got '" +
                                  t.text + "'");
    return t;
  }

  Token expect_ident(const char* keyword) {
    Token t = expect(Tok::kIdent, keyword);
    if (t.text != keyword)
      throw SpecError(t.line, std::string("expected '") + keyword +
                                  "', got '" + t.text + "'");
    return t;
  }

  Rule parse_rule() {
    expect_ident("rule");
    Rule rule;
    rule.name = expect(Tok::kIdent, "rule name").text;
    expect(Tok::kColon, "':'");
    expect_ident("when");
    rule.when = parse_or();
    expect_ident("do");
    const Token act = expect(Tok::kIdent, "action");
    if (act.text == "count") {
      rule.action = ActionKind::kCount;
    } else if (act.text == "trigger") {
      rule.action = ActionKind::kTrigger;
    } else if (act.text == "mark") {
      rule.action = ActionKind::kMark;
      rule.mark_label = expect(Tok::kIdent, "mark label").text;
    } else {
      throw SpecError(act.line, "unknown action '" + act.text + "'");
    }
    return rule;
  }

  Predicate parse_or() {
    Predicate left = parse_and();
    while (lex_.peek().type == Tok::kOrOr) {
      lex_.take();
      left = p_or(std::move(left), parse_and());
    }
    return left;
  }

  Predicate parse_and() {
    Predicate left = parse_unary();
    while (lex_.peek().type == Tok::kAndAnd) {
      lex_.take();
      left = p_and(std::move(left), parse_unary());
    }
    return left;
  }

  Predicate parse_unary() {
    if (lex_.peek().type == Tok::kBang) {
      lex_.take();
      return p_not(parse_unary());
    }
    if (lex_.peek().type == Tok::kLParen) {
      lex_.take();
      Predicate inner = parse_or();
      expect(Tok::kRParen, "')'");
      return inner;
    }
    return parse_cmp();
  }

  Predicate parse_cmp() {
    const Token ftok = expect(Tok::kIdent, "field name");
    const auto field = field_by_name(ftok.text);
    if (!field) throw SpecError(ftok.line, "unknown field '" + ftok.text + "'");
    const Token op = expect(Tok::kOp, "comparison operator");
    double rhs;
    const Token lit = lex_.take();
    if (lit.type == Tok::kNumber) {
      rhs = lit.number;
    } else if (lit.type == Tok::kIdent && *field == Field::kKind) {
      auto it = kind_names().find(lit.text);
      if (it == kind_names().end())
        throw SpecError(lit.line, "unknown event kind '" + lit.text + "'");
      rhs = static_cast<double>(it->second);
    } else {
      throw SpecError(lit.line, "expected literal, got '" + lit.text + "'");
    }
    const Field f = *field;
    const std::string o = op.text;
    if (o == "=")
      return [f, rhs](const trace::EventRecord& r) { return field_value(f, r) == rhs; };
    if (o == "!=")
      return [f, rhs](const trace::EventRecord& r) { return field_value(f, r) != rhs; };
    if (o == "<")
      return [f, rhs](const trace::EventRecord& r) { return field_value(f, r) < rhs; };
    if (o == "<=")
      return [f, rhs](const trace::EventRecord& r) { return field_value(f, r) <= rhs; };
    if (o == ">")
      return [f, rhs](const trace::EventRecord& r) { return field_value(f, r) > rhs; };
    return [f, rhs](const trace::EventRecord& r) { return field_value(f, r) >= rhs; };
  }

  Lexer lex_;
};

}  // namespace

std::vector<Rule> parse_spec(const std::string& text) {
  return Parser(text).parse();
}

Predicate match_kind(trace::EventKind k) {
  return [k](const trace::EventRecord& r) { return r.kind == k; };
}
Predicate match_node(std::uint32_t node) {
  return [node](const trace::EventRecord& r) { return r.node == node; };
}
Predicate match_tag(std::uint16_t tag) {
  return [tag](const trace::EventRecord& r) { return r.tag == tag; };
}
Predicate payload_above(std::uint64_t threshold) {
  return [threshold](const trace::EventRecord& r) {
    return r.payload > threshold;
  };
}
Predicate sample_value_above(double threshold) {
  return [threshold](const trace::EventRecord& r) {
    return r.kind == trace::EventKind::kSample &&
           trace::unpack_double(r.payload) > threshold;
  };
}
Predicate p_and(Predicate a, Predicate b) {
  return [a = std::move(a), b = std::move(b)](const trace::EventRecord& r) {
    return a(r) && b(r);
  };
}
Predicate p_or(Predicate a, Predicate b) {
  return [a = std::move(a), b = std::move(b)](const trace::EventRecord& r) {
    return a(r) || b(r);
  };
}
Predicate p_not(Predicate a) {
  return [a = std::move(a)](const trace::EventRecord& r) { return !a(r); };
}

}  // namespace prism::spi
