#!/usr/bin/env python3
"""Telemetry-overhead check: the live telemetry plane (DESIGN.md §14) must
cost under --tolerance (default 5%) of chaos workload wall time.

Usage:
    scripts/telemetry_overhead.py BENCH_chaos.json [MORE.json ...] \\
                                  [--tolerance 0.05]

Each input is a BENCH_chaos.json produced by ``chaos_degradation
--telemetry``: one file carries both sides of the comparison —
``chaos_wall_ms`` is the seeded chaos run with telemetry off, and
``telemetry.wall_ms`` the same seed rerun with the sampler + AF_UNIX scrape
endpoint live and scraped mid-run.  Across the input files the check takes
the MINIMUM wall on each side — min-of-N is the standard noise-robust
wall-time estimator; a loaded 1-core CI box swings single runs by more than
the tolerance in either direction — and fails when the telemetry side
exceeds the plain side by more than the tolerance.

The bench itself already enforces neutrality (identical loss ledger) and
mid-run snapshot conservation; this gate only bounds the wall-time cost,
and re-checks the bench's own verdicts so a gated CI run cannot pass on a
perturbed ledger.

Exit codes: 0 within tolerance, 1 overhead/malformed input, 2 usage error.
"""

import argparse
import json
import sys


def load_walls(paths):
    """Returns (min plain wall_ms, min telemetry wall_ms) across the runs,
    raising ValueError on files without a telemetry leg or with a failed
    in-bench verdict."""
    plain = []
    live = []
    for path in paths:
        with open(path) as f:
            tree = json.load(f)
        off = tree.get("chaos_wall_ms")
        tel = tree.get("telemetry") or {}
        on = tel.get("wall_ms")
        if not isinstance(off, (int, float)) or not isinstance(on, (int, float)):
            raise ValueError(
                f"{path}: no telemetry leg; run chaos_degradation --telemetry")
        if tel.get("snapshots_conserved") is False:
            raise ValueError(f"{path}: a mid-run snapshot broke conservation")
        if tel.get("ledger_identical") is False:
            raise ValueError(f"{path}: telemetry perturbed the chaos ledger")
        if not tel.get("scrapes"):
            raise ValueError(f"{path}: telemetry leg served no scrapes")
        plain.append(float(off))
        live.append(float(on))
    return min(plain), min(live)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench", nargs="+", metavar="BENCH_chaos.json",
                    help="output(s) of chaos_degradation --telemetry")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional overhead (default 0.05 = 5%%)")
    args = ap.parse_args()

    try:
        off_ms, on_ms = load_walls(args.bench)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"telemetry_overhead: cannot load input: {e}")
        return 1

    if off_ms <= 0:
        print(f"telemetry_overhead: nonsensical plain wall {off_ms} ms")
        return 1

    overhead = on_ms / off_ms - 1.0
    verdict = "OK" if overhead <= args.tolerance else "FAIL"
    print(f"telemetry_overhead: plain {off_ms:.1f} ms, telemetry {on_ms:.1f} ms "
          f"-> {overhead * 100:+.1f}% (tolerance {args.tolerance * 100:.0f}%) "
          f"[{verdict}] over {len(args.bench)} run(s)")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
