#!/usr/bin/env python3
"""Profiling-overhead check: the self-profiling plane (DESIGN.md §13) must
cost under --tolerance (default 5%) of workload wall time.

Usage:
    scripts/prof_overhead.py --on ON.json [ON2.json ...] \\
                             --off OFF.json [OFF2.json ...] [--tolerance 0.05]

Each ``--on`` file is a BENCH_replication.json produced with profiling
active; each ``--off`` file one produced by the same binary with
PRISM_PROF=off in the environment (counter scopes read wall clock only; the
interposed allocator and WorkerClock publishes remain, so this isolates the
perf/rusage syscall cost).  For every workload x thread-count leg the check
takes the MINIMUM wall_ms across the runs on each side — min-of-N is the
standard noise-robust wall-time estimator; a loaded 1-core CI box swings
single runs by more than the tolerance in either direction — then compares
the summed minima and fails when the profiled sum exceeds the unprofiled
sum by more than the tolerance.

Exit codes: 0 within tolerance, 1 overhead/malformed input, 2 usage error.
"""

import argparse
import json
import sys


def leg_walls(tree):
    """[(workload, threads, wall_ms)] in file order."""
    legs = []
    for wl in tree.get("workloads") or []:
        for row in wl.get("results") or []:
            ms = row.get("wall_ms")
            if isinstance(ms, (int, float)):
                legs.append((wl.get("name"), row.get("threads"), float(ms)))
    return legs


def min_walls(paths):
    """Per-leg minimum across runs.  Returns (leg keys, min wall_ms list)."""
    keys = None
    mins = None
    for path in paths:
        with open(path) as f:
            legs = leg_walls(json.load(f))
        run_keys = [(name, threads) for name, threads, _ in legs]
        walls = [ms for _, _, ms in legs]
        if keys is None:
            keys, mins = run_keys, walls
        elif run_keys != keys:
            raise ValueError(f"{path}: leg set differs from first run; "
                             "run the same binary and flags every time")
        else:
            mins = [min(a, b) for a, b in zip(mins, walls)]
    return keys or [], mins or []


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--on", nargs="+", required=True, metavar="BENCH_ON",
                    help="BENCH json(s) with profiling enabled")
    ap.add_argument("--off", nargs="+", required=True, metavar="BENCH_OFF",
                    help="BENCH json(s) from PRISM_PROF=off runs")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional overhead (default 0.05 = 5%%)")
    args = ap.parse_args()

    try:
        on_keys, on_mins = min_walls(args.on)
        off_keys, off_mins = min_walls(args.off)
        with open(args.on[0]) as f:
            backend = json.load(f).get("profiling_backend", "?")
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"prof_overhead: cannot load input: {e}")
        return 1

    if not on_keys or on_keys != off_keys:
        print(f"prof_overhead: leg mismatch (profiled {len(on_keys)} legs, "
              f"unprofiled {len(off_keys)}); run the same binary and flags "
              "on both sides")
        return 1

    on_ms = sum(on_mins)
    off_ms = sum(off_mins)
    if off_ms <= 0:
        print("prof_overhead: unprofiled wall time is zero; nothing to gate")
        return 1

    overhead = on_ms / off_ms - 1
    verdict = "FAIL" if overhead > args.tolerance else "ok"
    print(f"prof_overhead [{verdict}]: backend={backend}, "
          f"{len(on_keys)} legs, min of {len(args.on)}x on / "
          f"{len(args.off)}x off: profiled {on_ms:.1f} ms vs unprofiled "
          f"{off_ms:.1f} ms ({overhead * 100:+.1f}%, limit "
          f"+{args.tolerance * 100:.0f}%)")
    return 1 if overhead > args.tolerance else 0


if __name__ == "__main__":
    sys.exit(main())
