#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_*.json against its committed
baseline and fail when any throughput metric regressed beyond tolerance.

Usage:
    scripts/bench_gate.py BASELINE FRESH [--tolerance 0.10]

Every numeric field whose name ends in ``_per_sec`` (events/sec, ops/sec,
ticks/sec) anywhere in the JSON tree is a throughput metric; the gate fails
when ``fresh < baseline * (1 - tolerance)``.  Speedups getting *faster* never
fail.  Matching is by JSON path, so renaming or dropping a metric is flagged
as a missing-metric failure rather than silently ungated; *new* metrics in
the fresh file are ignored (they have no baseline yet), and everything under
a ``diagnosis`` or ``telemetry`` key is additive self-measurement, exempt
from both gating and missing-metric checks (``diagnosis`` fields vary with
the measurement backend; ``telemetry`` blocks exist only on runs that passed
--telemetry).

Parallel-scaling rows (``workloads[].results[].speedup_vs_serial``) are also
gated against the baseline, with one exception: a row that ran more worker
threads than the box has hardware threads (``oversubscribed`` flag, or
``threads > hardware_concurrency`` in either file) measures time-slicing,
not scaling, and is skipped with a printed note.  Rows present in only one
file (thread sweeps differ across boxes) are skipped, not failed.

Allocation-discipline rows (``workloads[].diagnosis.rows[].allocs_per_event``)
are the one gated exception to the diagnosis exemption: the hot path's
allocations-per-event ratio must not rise above the committed baseline by
more than the tolerance (plus a small absolute slack for counting noise).
Rows whose ratio is ``null`` (zero events executed — the ratio is undefined,
not perfect) or missing in either file are skipped.  Lower is better, so a
falling ratio never fails.

Both files must agree on their ``quick`` flag when present — a full-workload
run compared against a quick baseline (or vice versa) measures workload size,
not regression.

Capture baselines as the per-metric *minimum* over several quick runs (the
committed ones were floored over four samples): single-run numbers on a
small box swing more than the tolerance, and a floored baseline fires only
on regressions below the machine's observed variance.

Exit codes: 0 clean, 1 regression/malformed input, 2 usage error.
"""

import argparse
import json
import sys


def throughput_metrics(tree, path=""):
    """Yields (json_path, value) for every *_per_sec number in the tree,
    skipping ``diagnosis``/``telemetry`` subtrees (additive
    self-measurement, never gated)."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            if key in ("diagnosis", "telemetry"):
                continue
            sub = f"{path}.{key}" if path else key
            if key.endswith("_per_sec") and isinstance(value, (int, float)):
                yield sub, float(value)
            else:
                yield from throughput_metrics(value, sub)
    elif isinstance(tree, list):
        for i, value in enumerate(tree):
            yield from throughput_metrics(value, f"{path}[{i}]")


def speedup_rows(tree):
    """Yields (key, speedup, oversubscribed) per parallel workload row."""
    hw = tree.get("hardware_concurrency") or 0
    for wl in tree.get("workloads") or []:
        name = wl.get("name", "?")
        for row in wl.get("results") or []:
            threads = row.get("threads")
            speedup = row.get("speedup_vs_serial")
            if not isinstance(threads, int) or threads <= 1:
                continue
            if not isinstance(speedup, (int, float)):
                continue
            over = bool(row.get("oversubscribed")) or (hw and threads > hw)
            yield f"{name}.speedup_vs_serial[threads={threads}]", \
                float(speedup), over


def alloc_ratios(tree):
    """Yields (key, allocs_per_event) per workload diagnosis row, skipping
    null ratios (zero-event legs: the ratio is undefined there)."""
    for wl in tree.get("workloads") or []:
        name = wl.get("name", "?")
        rows = (wl.get("diagnosis") or {}).get("rows") or []
        for row in rows:
            threads = row.get("threads")
            ratio = row.get("allocs_per_event")
            if not isinstance(threads, int):
                continue
            if not isinstance(ratio, (int, float)):
                continue  # null / missing: no events, nothing to gate
            yield f"{name}.allocs_per_event[threads={threads}]", float(ratio)


# Counting noise floor for the alloc gate: one-off registry registrations
# and pool bring-up land in the process-wide delta, so ratios this close to
# the baseline are indistinguishable from run-to-run jitter.
ALLOC_ABS_SLACK = 0.02


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("fresh", help="just-produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop (default 0.10 = 10%%)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot load input: {e}")
        return 1

    if base.get("quick") != fresh.get("quick"):
        print(f"bench_gate: quick-mode mismatch (baseline quick="
              f"{base.get('quick')}, fresh quick={fresh.get('quick')}); "
              "regenerate the baseline with the same mode")
        return 1

    fresh_metrics = dict(throughput_metrics(fresh))
    failures = []
    checked = 0
    for path, base_v in throughput_metrics(base):
        if base_v <= 0:
            continue  # degenerate baseline sample; nothing to gate against
        if path not in fresh_metrics:
            failures.append(f"  MISSING {path} (baseline {base_v:.0f})")
            continue
        checked += 1
        fresh_v = fresh_metrics[path]
        ratio = fresh_v / base_v
        marker = "FAIL" if ratio < 1 - args.tolerance else "ok"
        print(f"  [{marker:4s}] {path}: {base_v:12.0f} -> {fresh_v:12.0f} "
              f"({(ratio - 1) * 100:+.1f}%)")
        if ratio < 1 - args.tolerance:
            failures.append(f"  REGRESSED {path}: {base_v:.0f} -> {fresh_v:.0f} "
                            f"({(ratio - 1) * 100:+.1f}%, limit "
                            f"-{args.tolerance * 100:.0f}%)")

    # Parallel-scaling rows: gated like throughput, except that rows which
    # oversubscribed the box (in either file) are informational only.
    fresh_speedups = {k: (v, over) for k, v, over in speedup_rows(fresh)}
    for key, base_v, base_over in speedup_rows(base):
        if key not in fresh_speedups:
            print(f"  [skip] {key}: not in fresh file (thread sweep differs)")
            continue
        fresh_v, fresh_over = fresh_speedups[key]
        if base_over or fresh_over:
            print(f"  [skip] {key}: oversubscribed (threads > "
                  f"hardware_concurrency) — measures time-slicing, not "
                  f"scaling ({base_v:.2f}x -> {fresh_v:.2f}x)")
            continue
        if base_v <= 0:
            continue
        checked += 1
        ratio = fresh_v / base_v
        marker = "FAIL" if ratio < 1 - args.tolerance else "ok"
        print(f"  [{marker:4s}] {key}: {base_v:11.2f}x -> {fresh_v:11.2f}x "
              f"({(ratio - 1) * 100:+.1f}%)")
        if ratio < 1 - args.tolerance:
            failures.append(f"  REGRESSED {key}: {base_v:.2f}x -> "
                            f"{fresh_v:.2f}x ({(ratio - 1) * 100:+.1f}%, "
                            f"limit -{args.tolerance * 100:.0f}%)")

    # Allocation discipline: allocs_per_event must not *rise* past the
    # committed baseline (inverted sense vs throughput — lower is better).
    fresh_allocs = dict(alloc_ratios(fresh))
    for key, base_v in alloc_ratios(base):
        if key not in fresh_allocs:
            print(f"  [skip] {key}: not in fresh file (no events or no row)")
            continue
        fresh_v = fresh_allocs[key]
        limit = base_v * (1 + args.tolerance) + ALLOC_ABS_SLACK
        checked += 1
        marker = "FAIL" if fresh_v > limit else "ok"
        print(f"  [{marker:4s}] {key}: {base_v:11.3f} -> {fresh_v:11.3f} "
              f"(limit {limit:.3f})")
        if fresh_v > limit:
            failures.append(f"  REGRESSED {key}: {base_v:.3f} -> {fresh_v:.3f} "
                            f"allocs/event (limit {limit:.3f}: baseline "
                            f"+{args.tolerance * 100:.0f}% "
                            f"+{ALLOC_ABS_SLACK} slack)")

    if not checked and not failures:
        print("bench_gate: no *_per_sec metrics found in baseline")
        return 1
    if failures:
        print(f"\nbench_gate: {len(failures)} failure(s) vs {args.baseline}:")
        for f_ in failures:
            print(f_)
        return 1
    print(f"\nbench_gate: {checked} metric(s) within -{args.tolerance * 100:.0f}% "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
